package core

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/pattern"
)

// Heavy fixtures are trained once and shared: training with the full
// 144-language candidate space is the expensive step.
var (
	fullOnce sync.Once
	fullDet  *Detector
	fullRep  *TrainReport
	fullErr  error

	tinyOnce sync.Once
	tinyDet  *Detector
	tinyErr  error
)

// fullDetector trains on a WEB-profile corpus with the complete candidate
// space — the configuration every behavioural test shares.
func fullDetector(t testing.TB) (*Detector, *TrainReport) {
	t.Helper()
	fullOnce.Do(func() {
		c := corpus.Generate(corpus.WebProfile(), 6000, 7)
		cfg := DefaultTrainConfig()
		cfg.DistSup.PositivePairs = 5000
		cfg.DistSup.NegativePairs = 5000
		fullDet, fullRep, fullErr = Train(c, cfg)
	})
	if fullErr != nil {
		t.Fatal(fullErr)
	}
	return fullDet, fullRep
}

// tinyDetector trains with a three-language candidate set for cheap
// plumbing tests.
func tinyDetector(t testing.TB) *Detector {
	t.Helper()
	tinyOnce.Do(func() {
		c := corpus.Generate(corpus.WebProfile(), 2000, 7)
		cfg := DefaultTrainConfig()
		cfg.Languages = []pattern.Language{pattern.Crude(), pattern.L1(), pattern.L2()}
		cfg.DistSup.PositivePairs = 1500
		cfg.DistSup.NegativePairs = 1500
		tinyDet, _, tinyErr = Train(c, cfg)
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyDet
}

func TestTrainSelectsEnsemble(t *testing.T) {
	det, rep := fullDetector(t)
	if rep.CandidateLanguages != 144 {
		t.Errorf("candidates = %d, want 144", rep.CandidateLanguages)
	}
	if len(rep.Selected) < 2 {
		t.Errorf("selected only %d languages: %v", len(rep.Selected), rep.Selected)
	}
	if rep.Coverage == 0 {
		t.Error("zero training coverage")
	}
	if det.Bytes() > 64<<20 {
		t.Errorf("model exceeds budget: %d bytes", det.Bytes())
	}
	if rep.TrainingExamples < 9000 {
		t.Errorf("training examples = %d", rep.TrainingExamples)
	}
}

// TestMotivatingColumns reproduces the introduction's Col-1/Col-2/Col-3
// discussion: comma-separated thousands and floats among integers are NOT
// errors (global statistics say they co-occur), while a 50-50 mix of two
// date formats IS an error regardless of the local distribution.
func TestMotivatingColumns(t *testing.T) {
	det, _ := fullDetector(t)

	// Col-1: {0, 1, ..., 999, 1,000} — MDL would flag "1,000"; we must not.
	col1 := make([]string, 0, 40)
	for i := 0; i < 39; i++ {
		col1 = append(col1, strconv.Itoa(i*25))
	}
	col1 = append(col1, "1,000")
	for _, f := range det.DetectColumn(col1) {
		if f.Value == "1,000" && f.Confidence > 0.5 {
			t.Errorf("flagged compatible comma-separated integer with confidence %.2f (partner %q)",
				f.Confidence, f.Partner)
		}
	}

	// Col-2: mostly integers plus "1.99" — also not an error.
	col2 := []string{"0", "1", "2", "5", "12", "25", "40", "77", "99", "1.99"}
	for _, f := range det.DetectColumn(col2) {
		if f.Value == "1.99" && f.Confidence > 0.5 {
			t.Errorf("flagged compatible float among integers with confidence %.2f", f.Confidence)
		}
	}

	// Col-3: 50-50 mix of "2011-01-xx" and "2011/01/xx" — every pair across
	// the two formats is incompatible; the detector must flag the mix.
	var col3 []string
	for d := 1; d <= 6; d++ {
		col3 = append(col3, "2011-01-0"+strconv.Itoa(d))
		col3 = append(col3, "2011/01/0"+strconv.Itoa(d))
	}
	findings := det.DetectColumn(col3)
	flagged := false
	for _, f := range findings {
		if f.Confidence > 0.5 {
			flagged = true
			break
		}
	}
	if !flagged {
		t.Error("failed to flag the 50-50 mixed date formats of Col-3")
	}
}

func TestDetectColumnPlantedError(t *testing.T) {
	det, _ := fullDetector(t)
	cases := []struct {
		values []string
		dirty  string
	}{
		{[]string{"2011-01-01", "2012-05-14", "2013-11-30", "2014-02-07", "2011/06/20"}, "2011/06/20"},
		{[]string{"3-2", "1-0", "4-4", "2-1", "0-0", "-"}, "-"},
		{[]string{"1963", "2008", "1976", "1999", "2013."}, "2013."},
		{[]string{"72 kg", "81 kg", "64 kg", "154 lbs", "90 kg"}, "154 lbs"},
	}
	for _, c := range cases {
		findings := det.DetectColumn(c.values)
		if len(findings) == 0 {
			t.Errorf("no findings for %v", c.values)
			continue
		}
		if findings[0].Value != c.dirty {
			t.Errorf("top finding for %v is %q (%.2f), want %q",
				c.values, findings[0].Value, findings[0].Confidence, c.dirty)
		}
	}
}

func TestDetectColumnCleanColumnsQuiet(t *testing.T) {
	det, _ := fullDetector(t)
	clean := [][]string{
		{"2011-01-01", "2012-05-14", "2013-11-30", "2014-02-07"},
		{"1", "15", "230", "4,500", "99"},
		{"Alice Smith", "Bob Jones", "Carol Chen"},
		{"42%", "7%", "99%", "13.5%"},
	}
	for _, values := range clean {
		for _, f := range det.DetectColumn(values) {
			if f.Confidence > 0.8 {
				t.Errorf("high-confidence finding %q (%.2f) in clean column %v",
					f.Value, f.Confidence, values)
			}
		}
	}
}

func TestDetectColumnDegenerate(t *testing.T) {
	det := tinyDetector(t)
	if got := det.DetectColumn(nil); got != nil {
		t.Error("nil column should yield no findings")
	}
	if got := det.DetectColumn([]string{"only"}); got != nil {
		t.Error("single value should yield no findings")
	}
	if got := det.DetectColumn([]string{"same", "same", "same"}); got != nil {
		t.Error("constant column should yield no findings")
	}
}

func TestScorePairSymmetry(t *testing.T) {
	det := tinyDetector(t)
	a := det.ScorePair("2011-01-01", "2011/01/01")
	b := det.ScorePair("2011/01/01", "2011-01-01")
	if a.Confidence != b.Confidence || a.Flagged != b.Flagged {
		t.Error("ScorePair is not symmetric")
	}
	if len(a.ByLanguage) != len(det.Languages()) {
		t.Errorf("ByLanguage has %d entries, want %d", len(a.ByLanguage), len(det.Languages()))
	}
}

func TestAggregationStrategiesDiffer(t *testing.T) {
	det, _ := fullDetector(t)
	defer det.SetAggregation(AggMaxConfidence)
	u, v := "2011-01-01", "2011/01/01"
	base := det.ScorePair(u, v)
	if !base.Flagged {
		t.Fatalf("max-confidence should flag mixed dates (conf %.2f)", base.Confidence)
	}
	seen := map[string]float64{}
	for _, agg := range []Aggregation{AggMaxConfidence, AggAvgNPMI, AggMinNPMI, AggMajorityVote, AggWeightedMajorityVote} {
		det.SetAggregation(agg)
		ps := det.ScorePair(u, v)
		seen[agg.String()] = ps.Confidence
		if ps.Confidence < 0 || ps.Confidence > 1 {
			t.Errorf("%v confidence %v out of range", agg, ps.Confidence)
		}
	}
	if len(seen) != 5 {
		t.Errorf("aggregations = %v", seen)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train(nil, DefaultTrainConfig()); err == nil {
		t.Error("nil corpus should error")
	}
	if _, _, err := Train(&corpus.Corpus{}, DefaultTrainConfig()); err == nil {
		t.Error("empty corpus should error")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	det := tinyDetector(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Languages()) != len(det.Languages()) {
		t.Fatal("language count differs")
	}
	pairs := [][2]string{
		{"2011-01-01", "2011/01/01"},
		{"100", "1,000"},
		{"3-2", "-"},
		{"a@b.com", "12:30"},
	}
	for _, p := range pairs {
		a, b := det.ScorePair(p[0], p[1]), back.ScorePair(p[0], p[1])
		if a.Confidence != b.Confidence || a.Flagged != b.Flagged {
			t.Errorf("pair %v scored differently after round trip: %+v vs %+v", p, a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a model")); err == nil {
		t.Error("garbage should not load")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input should not load")
	}
}

func TestTrainWithSketchCompression(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 4000, 7)
	cfg := DefaultTrainConfig()
	cfg.DistSup.PositivePairs = 3000
	cfg.DistSup.NegativePairs = 3000
	// A representative sixteen-language subset keeps the test fast.
	all := pattern.All()
	for i := 0; i < len(all); i += 5 {
		cfg.Languages = append(cfg.Languages, all[i])
	}
	cfg.SketchRatio = 0.1
	det, _, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := det.ScorePair("2011-01-01", "2011/01/01")
	if !ps.Flagged {
		t.Errorf("sketch-compressed detector lost the mixed-date signal (conf %.2f)", ps.Confidence)
	}
	clean := det.ScorePair("2011-01-01", "2012-09-30")
	if clean.Flagged {
		t.Error("sketch-compressed detector flags identical-format dates")
	}
}

func BenchmarkScorePair(b *testing.B) {
	det, _ := fullDetector(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = det.ScorePair("2011-01-01", "2011/01/01")
	}
}

func BenchmarkDetectColumn(b *testing.B) {
	det, _ := fullDetector(b)
	col := []string{"2011-01-01", "2012-05-14", "2013-11-30", "2014-02-07", "2011/06/20",
		"2015-03-12", "2016-08-01", "2017-09-22", "2018-10-05", "2019-12-31"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = det.DetectColumn(col)
	}
}
