package core

import (
	"errors"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// TrainBatched trains like Train but bounds peak memory by processing
// candidate languages in batches: each batch gets its own corpus pass,
// is calibrated, reduced to lightweight metadata (threshold, precision
// curve, coverage, size), and its statistics are dropped. After selection,
// one final corpus pass rebuilds statistics for the chosen languages only.
//
// Holding all 144 candidates' statistics at once costs ~300KB per language
// per thousand corpus columns (dominated by near-leaf languages' pair
// dictionaries); batching caps the peak at batchSize languages plus the
// final ensemble, at the cost of ⌈candidates/batchSize⌉+1 corpus passes.
func TrainBatched(c *corpus.Corpus, cfg TrainConfig, batchSize int) (*Detector, *TrainReport, error) {
	if c == nil || len(c.Columns) == 0 {
		return nil, nil, errors.New("core: empty training corpus")
	}
	if batchSize <= 0 {
		batchSize = 16
	}
	if cfg.TargetPrecision == 0 {
		cfg.TargetPrecision = 0.95
	}
	if cfg.Smoothing == 0 {
		cfg.Smoothing = stats.DefaultSmoothing
	}
	if cfg.MemoryBudget == 0 {
		cfg.MemoryBudget = 64 << 20
	}
	langs := cfg.Languages
	if langs == nil {
		langs = pattern.All()
	}
	ds := cfg.DistSup
	if ds.PositivePairs == 0 && ds.NegativePairs == 0 {
		ds = distsup.DefaultConfig()
	}

	data, err := distsup.Generate(c, ds)
	if err != nil {
		return nil, nil, fmt.Errorf("core: generating training data: %w", err)
	}

	// Phase 1: per-batch statistics + calibration; keep metadata only.
	light := make([]*Calibration, 0, len(langs))
	for start := 0; start < len(langs); start += batchSize {
		end := start + batchSize
		if end > len(langs) {
			end = len(langs)
		}
		builder := stats.NewBuilder(langs[start:end], cfg.Smoothing)
		for _, col := range c.Columns {
			builder.AddColumn(col.Values)
		}
		for _, ls := range builder.Stats() {
			cal, err := Calibrate(ls, data, cfg.TargetPrecision)
			if err != nil {
				return nil, nil, fmt.Errorf("core: calibrating %v: %w", ls.Language(), err)
			}
			cal.SizeOverride = ls.Bytes()
			cal.langID = ls.Language().ID
			cal.Stats = nil // drop the statistics; keep curve + coverage
			light = append(light, cal)
		}
	}

	// Phase 2: selection on metadata.
	sel, err := SelectGreedy(light, cfg.MemoryBudget)
	if err != nil {
		return nil, nil, err
	}

	// Phase 3: rebuild statistics for the chosen languages only.
	chosenLangs := make([]pattern.Language, len(sel.Chosen))
	for i, cal := range sel.Chosen {
		chosenLangs[i] = pattern.ByID(cal.langID)
	}
	builder := stats.NewBuilder(chosenLangs, cfg.Smoothing)
	for _, col := range c.Columns {
		builder.AddColumn(col.Values)
	}
	for i, cal := range sel.Chosen {
		cal.Stats = builder.Stats()[i]
		cal.SizeOverride = 0
	}

	if cfg.SketchRatio > 0 && cfg.SketchRatio < 1 {
		for _, cal := range sel.Chosen {
			if err := cal.Stats.CompressToSketch(cfg.SketchRatio, 4); err != nil {
				return nil, nil, fmt.Errorf("core: compressing statistics: %w", err)
			}
		}
	}

	det, err := NewDetector(sel.Chosen, cfg.Aggregation)
	if err != nil {
		return nil, nil, err
	}
	report := &TrainReport{
		CandidateLanguages: len(langs),
		TrainingExamples:   len(data.Examples),
		CompatColumns:      data.CompatColumns,
		SelectedBytes:      det.Bytes(),
		Coverage:           sel.Coverage,
		UsedSingleton:      sel.UsedSingleton,
	}
	for _, cal := range sel.Chosen {
		report.Selected = append(report.Selected, cal.Stats.Language())
	}
	return det, report, nil
}
