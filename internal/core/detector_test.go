package core

import (
	"strconv"
	"testing"

	"repro/internal/distsup"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// fixtureCalibrations builds two deterministic calibrated languages from a
// tiny hand-made corpus: the crude language (sees separators) and L1
// (sees only symbols), calibrated against hand-made training pairs.
func fixtureCalibrations(t *testing.T) []*Calibration {
	t.Helper()
	mk := func(lang pattern.Language) *stats.LanguageStats {
		ls := stats.NewLanguageStats(lang, 0.1)
		for i := 0; i < 40; i++ {
			ls.AddColumn([]string{"2011-01-01", "2012-03-04", "1999-12-31"})
			ls.AddColumn([]string{"2011/01/01", "2012/03/04"})
			ls.AddColumn([]string{"2011-01-01", "1999", "2005"})
			ls.AddColumn([]string{"July-01", "March-02", "April-03"})
		}
		return ls
	}
	ex := func(u, v string, neg bool) distsup.Example {
		return distsup.Example{
			U: u, V: v,
			URuns: pattern.Encode(u), VRuns: pattern.Encode(v),
			Incompatible: neg,
		}
	}
	data := &distsup.Data{Examples: []distsup.Example{
		ex("2011-01-01", "2012-03-04", false),
		ex("2011-01-01", "1999", false),
		ex("1999", "2005", false),
		ex("July-01", "March-02", false),
		ex("2011-01-01", "2011/01/01", true),
		ex("2012-03-04", "2011/01/01", true),
		ex("1999", "2011/01/01", true),
		ex("July-01", "2011/01/01", true),
		ex("July-01", "1999", true),
	}}
	var cals []*Calibration
	for _, lang := range []pattern.Language{pattern.Crude(), pattern.L2()} {
		cal, err := Calibrate(mk(lang), data, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		cals = append(cals, cal)
	}
	return cals
}

func TestFixtureCalibrationsFire(t *testing.T) {
	cals := fixtureCalibrations(t)
	for _, cal := range cals {
		if cal.Theta < -1 {
			t.Fatalf("language %v never fires (θ=%v, coverage=%d)",
				cal.Stats.Language(), cal.Theta, cal.CoverageCount())
		}
	}
	// Crude sees the separator difference.
	crude := cals[0]
	s := crude.Stats.NPMIValues("2011-01-01", "2011/01/01")
	if !crude.Covers(s) {
		t.Errorf("crude should fire on mixed separators (score %v, θ %v)", s, crude.Theta)
	}
	// L2 cannot: both generalize identically.
	l2 := cals[1]
	if got := l2.Stats.NPMIValues("2011-01-01", "2011/01/01"); got != 1 {
		t.Errorf("L2 should see identical patterns, NPMI = %v", got)
	}
}

func TestMaxConfidenceUnionSemantics(t *testing.T) {
	det, err := NewDetector(fixtureCalibrations(t), AggMaxConfidence)
	if err != nil {
		t.Fatal(err)
	}
	// One language firing suffices.
	ps := det.ScorePair("2011-01-01", "2011/01/01")
	if !ps.Flagged {
		t.Fatalf("union semantics broken: %+v", ps)
	}
	fires := 0
	for _, l := range ps.ByLanguage {
		if l.Fires {
			fires++
		}
	}
	if fires == 0 {
		t.Fatal("no language fired")
	}
	// Confidence equals the max precision among firing languages.
	want := 0.0
	for _, l := range ps.ByLanguage {
		if l.Fires && l.Precision > want {
			want = l.Precision
		}
	}
	if ps.Confidence != want {
		t.Errorf("confidence %v, want max firing precision %v", ps.Confidence, want)
	}
}

func TestMajorityVoteSemantics(t *testing.T) {
	det, err := NewDetector(fixtureCalibrations(t), AggMajorityVote)
	if err != nil {
		t.Fatal(err)
	}
	// "July-01" vs "1999": L2 distinguishes letters from digits and fires;
	// crude also does. Both fire → majority.
	ps := det.ScorePair("July-01", "1999")
	votes := 0
	for _, l := range ps.ByLanguage {
		if l.Fires {
			votes++
		}
	}
	if ps.Confidence != float64(votes)/2 {
		t.Errorf("MV confidence %v with %d votes", ps.Confidence, votes)
	}
	if votes*2 > 2 != ps.Flagged {
		t.Errorf("MV flag inconsistent: votes=%d flagged=%v", votes, ps.Flagged)
	}
}

func TestAggregationStringNames(t *testing.T) {
	names := map[Aggregation]string{
		AggMaxConfidence:        "Auto-Detect",
		AggAvgNPMI:              "AvgNPMI",
		AggMinNPMI:              "MinNPMI",
		AggMajorityVote:         "MV",
		AggWeightedMajorityVote: "WMV",
		Aggregation(99):         "unknown",
	}
	for agg, want := range names {
		if got := agg.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", agg, got, want)
		}
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(nil, AggMaxConfidence); err == nil {
		t.Error("empty ensemble should error")
	}
}

func TestDetectColumnMaxDistinctCap(t *testing.T) {
	det, err := NewDetector(fixtureCalibrations(t), AggMaxConfidence)
	if err != nil {
		t.Fatal(err)
	}
	det.maxDistinct = 10
	// 60 distinct values; must not blow up and must stay within the cap.
	values := make([]string, 60)
	for i := range values {
		values[i] = strconv.Itoa(1000 + i)
	}
	findings := det.DetectColumn(values)
	if len(findings) > 10 {
		t.Errorf("cap ignored: %d findings", len(findings))
	}
}

// TestDetectColumnIgnoresEmptyCells: CSV extraction pads ragged columns
// with empty cells; those are missing data and must never be flagged or
// used as conflict partners.
func TestDetectColumnIgnoresEmptyCells(t *testing.T) {
	det, err := NewDetector(fixtureCalibrations(t), AggMaxConfidence)
	if err != nil {
		t.Fatal(err)
	}
	values := []string{"2011-01-01", "", "2012-03-04", "", "", "1999-12-31"}
	for _, f := range det.DetectColumn(values) {
		if f.Value == "" || f.Partner == "" {
			t.Fatalf("empty cell surfaced in finding %+v", f)
		}
	}
	// All-empty and empty-plus-one columns are silent.
	if got := det.DetectColumn([]string{"", "", ""}); got != nil {
		t.Error("all-empty column should yield nothing")
	}
}

func TestDetectColumnWeightsByCount(t *testing.T) {
	det, err := NewDetector(fixtureCalibrations(t), AggMaxConfidence)
	if err != nil {
		t.Fatal(err)
	}
	// The minority slash date conflicts with six rows of dash dates; the
	// majority values conflict with only one row.
	values := []string{
		"2011-01-01", "2012-03-04", "1999-12-31", "2013-05-06", "2014-07-08",
		"2015-09-10", "2011/01/01",
	}
	findings := det.DetectColumn(values)
	if len(findings) == 0 || findings[0].Value != "2011/01/01" {
		t.Fatalf("findings = %+v", findings)
	}
	top := findings[0]
	var majority *Finding
	for i := range findings {
		if findings[i].Value == "2011-01-01" {
			majority = &findings[i]
		}
	}
	if majority != nil && majority.Confidence >= top.Confidence {
		t.Errorf("majority value %v should score below minority %v", majority, top)
	}
	if top.Index != 6 {
		t.Errorf("top index = %d", top.Index)
	}
}
