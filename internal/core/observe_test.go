package core

import "testing"

// TestHotPathCounters pins the accounting identities of the detection
// counters: DetectColumn on n distinct values adds n cells, n(n-1)/2
// pairs, and pairs × ensemble-size language evaluations.
func TestHotPathCounters(t *testing.T) {
	det, err := NewDetector(fixtureCalibrations(t), AggMaxConfidence)
	if err != nil {
		t.Fatal(err)
	}
	before := HotPath()

	values := []string{"2011-01-01", "2012-05-14", "2013-11-30", "2011/06/20"}
	det.DetectColumn(values)

	after := HotPath()
	if got := after.Values - before.Values; got < uint64(len(values)) {
		t.Errorf("values counter grew by %d, want >= %d", got, len(values))
	}
	wantPairs := uint64(len(values) * (len(values) - 1) / 2)
	if got := after.Pairs - before.Pairs; got < wantPairs {
		t.Errorf("pairs counter grew by %d, want >= %d", got, wantPairs)
	}
	wantLang := wantPairs * uint64(len(det.Languages()))
	if got := after.LanguagePairs - before.LanguagePairs; got < wantLang {
		t.Errorf("language-pairs counter grew by %d, want >= %d", got, wantLang)
	}

	mid := after
	det.ScorePair("72 kg", "154 lbs")
	final := HotPath()
	if final.Pairs == mid.Pairs {
		t.Error("ScorePair did not tick the pairs counter")
	}
}
