package core

import "math/bits"

// Bitset is a fixed-capacity bit set used to track which T− training
// examples a language covers (the H−k sets of Section 3.2).
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset holding n bits, all clear.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i/64] |= 1 << (i % 64) }

// Get reports bit i.
func (b *Bitset) Get(i int) bool { return b.words[i/64]&(1<<(i%64)) != 0 }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnionCount returns |b ∪ o| without materializing the union.
func (b *Bitset) UnionCount(o *Bitset) int {
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w | o.words[i])
	}
	return c
}

// Or merges o into b.
func (b *Bitset) Or(o *Bitset) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}
