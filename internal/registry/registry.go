// Package registry is the versioned model store and distribution layer
// between model producers (the distbuild coordinator, `autodetect train`)
// and the serving fleet: stateless autodetectd replicas pull the pinned
// model version from one durable source of truth instead of each carrying
// its own model file.
//
// Storage layout under the registry directory:
//
//	manifest.bin        version history + the pinned "current" pointer
//	v<N>/model.bin      the published model bytes, verbatim (model v2
//	                    envelope, so the file is independently verifiable)
//	v<N>/meta.bin       per-version metadata (digest, fingerprint, size)
//	quarantine/v<N>     versions that failed digest re-verification
//
// Every file is written through atomicio (temp + fsync + rename) and
// wrapped in the shared CRC64 envelope. The manifest is a cache: each
// version directory is self-describing through its meta.bin, so a torn
// manifest is rebuilt from a directory rescan and a publish is durable the
// moment its meta.bin lands. Restart re-verifies every stored version's
// SHA-256 digest; corrupt versions are quarantined — moved aside, dropped
// from the manifest, never served.
//
// The distribution protocol is HTTP (see Server):
//
//	POST /registry/v1/models            idempotent publish (dup → 200,
//	                                    divergent bytes at one build
//	                                    fingerprint → 409)
//	GET  /registry/v1/models            version list + current pointer
//	GET  /registry/v1/models/{version}  fetch bytes; "current" resolves the
//	                                    pin; If-None-Match → 304 no-body
//	POST /registry/v1/pin               pin/rollback the current pointer
//
// Pin state machine: publishing advances "current" to the new version
// while the registry is unpinned (the default). POST /pin with a version
// pins current there — later publishes still store new versions but stop
// advancing the pointer — and pinning to an older version than current is
// a rollback. POST /pin with {"latest": true} unpins and snaps current
// back to the newest version.
//
// Puller is the fleet side: it conditionally polls the pinned version
// (unchanged polls are 304s with no body), downloads on change under a
// retry policy, verifies the digest end to end, and hands the bytes to an
// apply hook — in autodetectd, the same atomic hot-swap path as
// /v1/admin/reload.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/envelope"
)

// Endpoint paths, versioned like the distbuild protocol so a future
// revision can coexist with draining v1 pullers.
const (
	PathModels = "/registry/v1/models"
	PathPin    = "/registry/v1/pin"
)

// Response headers carried by GET /registry/v1/models/{version}. The
// digest header lets a puller verify a download end to end without
// decoding it; the version header identifies what a 304 refers to.
const (
	HeaderVersion   = "X-Registry-Version"
	HeaderSHA256    = "X-Registry-Sha256"
	HeaderPublished = "X-Registry-Published-Unix-Ms"
	HeaderSource    = "X-Registry-Source"
	// HeaderTraceparent echoes the W3C traceparent recorded at publish
	// time, so a puller can link its hot-swap span to the build trace that
	// produced the version it just downloaded.
	HeaderTraceparent = "X-Registry-Traceparent"
)

// File names and magics of the on-disk layout.
const (
	manifestName   = "manifest.bin"
	metaName       = "meta.bin"
	modelName      = "model.bin"
	quarantineName = "quarantine"
)

var (
	magicManifest = []byte("AUTODETECT-RG/1\n")
	magicMeta     = []byte("AUTODETECT-RM/1\n")
)

// Size caps for decode-time sanity: a corrupted length field must never
// drive an unbounded allocation.
const (
	maxManifestBytes = int64(1) << 26 // 64 MiB of version history
	maxMetaBytes     = int64(1) << 20 // 1 MiB per version record

	// DefaultMaxModelBytes caps published model payloads (2 GiB, matching
	// the distbuild shard upload cap).
	DefaultMaxModelBytes = int64(1) << 31
)

// Sentinel errors. HTTP status mapping: ErrNotFound → 404, ErrConflict →
// 409, ErrInvalidModel → 503 + Retry-After (a torn upload is
// indistinguishable from a corrupt one; the producer re-uploads), and
// ErrCorrupt → 503 + Retry-After (the version just got quarantined; the
// next poll sees the fallback pointer).
var (
	// ErrNotFound reports a version absent from the registry.
	ErrNotFound = errors.New("registry: version not found")
	// ErrConflict reports a publish whose build fingerprint matches an
	// existing version but whose bytes differ — impossible for honest
	// producers, so the registry refuses rather than guesses.
	ErrConflict = errors.New("registry: divergent bytes for an already-published build fingerprint")
	// ErrInvalidModel reports publish bytes that fail model validation
	// (envelope, bounds, decode).
	ErrInvalidModel = errors.New("registry: model failed validation")
	// ErrCorrupt reports a stored version whose bytes no longer match
	// their recorded digest; the store quarantines it as a side effect.
	ErrCorrupt = errors.New("registry: stored version corrupt, quarantined")
)

// VersionInfo describes one published model version. It is the meta.bin
// payload, the manifest's per-version record, and the JSON shape of the
// list/publish/pin responses.
type VersionInfo struct {
	// Version is the 1-based monotonic version number.
	Version int `json:"version"`
	// SHA256 is the hex digest of the stored model bytes — the version's
	// content address, its ETag, and what restart re-verification checks.
	SHA256 string `json:"sha256"`
	// Bytes is the stored model file size.
	Bytes int64 `json:"bytes"`
	// Fingerprint is the producer's build fingerprint (corpus + training
	// configuration); publish refuses divergent bytes for one fingerprint.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Languages is the generalization-language count of the decoded model.
	Languages int `json:"languages"`
	// Source records who published ("distbuild", "train", "api", ...).
	Source string `json:"source,omitempty"`
	// PublishedUnixMs is the publish wall-clock time; replicas derive
	// model age from it.
	PublishedUnixMs int64 `json:"published_unix_ms"`
	// Traceparent is the W3C span context the publish request carried (the
	// coordinator's build trace, a train run's root span, ...). Persisted
	// so a replica pulling this version can record its hot-swap as a
	// descendant of the build that produced the model.
	Traceparent string `json:"traceparent,omitempty"`
}

// manifestState is the manifest.bin payload: the version history plus the
// current pointer and its pin bit. Versions are kept in ascending order.
type manifestState struct {
	Current  int           `json:"current"`
	Pinned   bool          `json:"pinned"`
	Versions []VersionInfo `json:"versions"`
}

// encodeEnvelopeJSON wraps v's JSON encoding in the CRC64 envelope.
func encodeEnvelopeJSON(w io.Writer, magic []byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return envelope.Write(w, magic, payload)
}

// decodeEnvelopeJSON reads an enveloped JSON payload into v. Integrity
// failures surface as envelope.ErrIntegrity; undecodable JSON inside an
// intact envelope is wrapped in it too — either way the file is not
// trustworthy.
func decodeEnvelopeJSON(r io.Reader, magic []byte, maxPayload int64, v any) error {
	payload, err := envelope.Read(r, magic, uint64(maxPayload))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("%w: undecodable payload: %v", envelope.ErrIntegrity, err)
	}
	return nil
}
