package registry

// Shared fixtures: three small, distinct, valid serialized models trained
// once per test binary, and a store opener with an injected deterministic
// clock.

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/observe"
	"repro/internal/pattern"
)

var (
	modelsOnce sync.Once
	modelRaw   [3][]byte
	modelsErr  error
)

// testModels returns three distinct valid model byte strings (different
// training seeds → different statistics → different bytes).
func testModels(t *testing.T) [3][]byte {
	t.Helper()
	modelsOnce.Do(func() {
		for i := range modelRaw {
			seed := int64(31 + i)
			c := corpus.Generate(corpus.WebProfile(), 1500, seed)
			cfg := core.DefaultTrainConfig()
			cfg.Languages = []pattern.Language{pattern.Crude(), pattern.L1(), pattern.L2()}
			ds := distsup.DefaultConfig()
			ds.PositivePairs, ds.NegativePairs = 1200, 1200
			ds.Seed = seed
			cfg.DistSup = ds
			det, _, err := core.Train(c, cfg)
			if err != nil {
				modelsErr = err
				return
			}
			var buf bytes.Buffer
			if err := det.Save(&buf); err != nil {
				modelsErr = err
				return
			}
			modelRaw[i] = buf.Bytes()
		}
	})
	if modelsErr != nil {
		t.Fatal(modelsErr)
	}
	if bytes.Equal(modelRaw[0], modelRaw[1]) || bytes.Equal(modelRaw[1], modelRaw[2]) {
		t.Fatal("fixture models are not distinct")
	}
	return modelRaw
}

// openTestStore opens a store over dir with a fixed-step clock and a live
// metrics registry.
func openTestStore(t *testing.T, dir string) (*Store, *observe.Registry) {
	t.Helper()
	reg := observe.NewRegistry()
	base := time.UnixMilli(1700000000000)
	n := 0
	st, err := Open(dir, Options{
		Metrics: reg,
		Logf:    t.Logf,
		now: func() time.Time {
			n++
			return base.Add(time.Duration(n) * time.Second)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, reg
}

func TestStorePublishListGetPin(t *testing.T) {
	models := testModels(t)
	st, _ := openTestStore(t, t.TempDir())

	// First publish becomes v1 and current.
	v1, dup, err := st.Publish(models[0], "fp-1", "test", "")
	if err != nil || dup {
		t.Fatalf("publish 1: info=%+v dup=%t err=%v", v1, dup, err)
	}
	if v1.Version != 1 || v1.Languages == 0 || v1.PublishedUnixMs == 0 {
		t.Fatalf("v1 record = %+v", v1)
	}
	// Second model becomes v2 and current advances (unpinned).
	v2, dup, err := st.Publish(models[1], "fp-2", "test", "")
	if err != nil || dup || v2.Version != 2 {
		t.Fatalf("publish 2: info=%+v dup=%t err=%v", v2, dup, err)
	}
	if cur, pinned, versions := st.List(); cur != 2 || pinned || len(versions) != 2 {
		t.Fatalf("after publish 2: current=%d pinned=%t versions=%d", cur, pinned, len(versions))
	}

	// Byte-identical re-publish is acknowledged as a duplicate of v2.
	again, dup, err := st.Publish(models[1], "fp-2", "test", "")
	if err != nil || !dup || again.Version != 2 {
		t.Fatalf("duplicate publish: info=%+v dup=%t err=%v", again, dup, err)
	}
	if _, _, versions := st.List(); len(versions) != 2 {
		t.Fatalf("duplicate publish grew the version list to %d", len(versions))
	}

	// Get returns the exact stored bytes.
	info, raw, err := st.Get(1)
	if err != nil || info.Version != 1 || !bytes.Equal(raw, models[0]) {
		t.Fatalf("get v1: info=%+v err=%v bytes-match=%t", info, err, bytes.Equal(raw, models[0]))
	}

	// Pin v1: rollback (older than current), pointer sticks.
	pinned, rollback, err := st.Pin(1)
	if err != nil || !rollback || pinned.Version != 1 {
		t.Fatalf("pin v1: info=%+v rollback=%t err=%v", pinned, rollback, err)
	}
	// A new publish stores v3 but current stays pinned at 1.
	v3, _, err := st.Publish(models[2], "fp-3", "test", "")
	if err != nil || v3.Version != 3 {
		t.Fatalf("publish 3: info=%+v err=%v", v3, err)
	}
	if cur, pinnedFlag, _ := st.List(); cur != 1 || !pinnedFlag {
		t.Fatalf("after pinned publish: current=%d pinned=%t, want 1/true", cur, pinnedFlag)
	}
	// Unpin to latest snaps to v3.
	latest, rollback, err := st.Pin(0)
	if err != nil || rollback || latest.Version != 3 {
		t.Fatalf("unpin: info=%+v rollback=%t err=%v", latest, rollback, err)
	}
	if cur, pinnedFlag, _ := st.List(); cur != 3 || pinnedFlag {
		t.Fatalf("after unpin: current=%d pinned=%t, want 3/false", cur, pinnedFlag)
	}
}

func TestStorePublishRejections(t *testing.T) {
	models := testModels(t)
	st, _ := openTestStore(t, t.TempDir())
	if _, _, err := st.Publish(models[0], "fp-x", "test", ""); err != nil {
		t.Fatal(err)
	}

	// Divergent bytes at an already-stored fingerprint → conflict.
	if _, _, err := st.Publish(models[1], "fp-x", "test", ""); !errors.Is(err, ErrConflict) {
		t.Fatalf("divergent publish: err=%v, want ErrConflict", err)
	}
	// Garbage bytes → invalid model.
	if _, _, err := st.Publish([]byte("not a model"), "", "test", ""); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("garbage publish: err=%v, want ErrInvalidModel", err)
	}
	// A torn model file (valid prefix) → invalid model, nothing stored.
	if _, _, err := st.Publish(models[0][:len(models[0])/2], "", "test", ""); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("torn publish: err=%v, want ErrInvalidModel", err)
	}
	if _, _, versions := st.List(); len(versions) != 1 {
		t.Fatalf("rejected publishes stored versions: %d", len(versions))
	}

	// Pinning a version that does not exist → not found.
	if _, _, err := st.Pin(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pin missing: err=%v, want ErrNotFound", err)
	}
}

func TestStoreRestartKeepsState(t *testing.T) {
	models := testModels(t)
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	for i, m := range models {
		if _, _, err := st.Publish(m, "", "test", ""); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if _, _, err := st.Pin(2); err != nil {
		t.Fatal(err)
	}
	curBefore, pinnedBefore, versionsBefore := st.List()

	// Reopen: the rescan must reproduce the same state, re-verifying every
	// digest along the way.
	st2, _ := openTestStore(t, dir)
	cur, pinned, versions := st2.List()
	if cur != curBefore || pinned != pinnedBefore || len(versions) != len(versionsBefore) {
		t.Fatalf("restart changed state: %d/%t/%d, want %d/%t/%d",
			cur, pinned, len(versions), curBefore, pinnedBefore, len(versionsBefore))
	}
	for i := range versions {
		if versions[i] != versionsBefore[i] {
			t.Fatalf("restart changed version record %d: %+v != %+v", i, versions[i], versionsBefore[i])
		}
	}
	info, raw, err := st2.Get(cur)
	if err != nil || !bytes.Equal(raw, models[1]) {
		t.Fatalf("get after restart: info=%+v err=%v", info, err)
	}
}
