package registry

// Fleet-side client behavior: conditional polling with 304 deltas,
// digest-verified downloads, fault-injected transports, and riding out
// registry restarts.

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/observe"
	"repro/internal/resilience"
	"repro/internal/retry"
)

// newTestPuller builds a puller against base whose Apply records the last
// applied (info, bytes) pair.
func newTestPuller(t *testing.T, base string, client *http.Client) (*Puller, *appliedState) {
	t.Helper()
	st := &appliedState{}
	p, err := NewPuller(PullerConfig{
		URL:  base,
		HTTP: client,
		Retry: retry.Policy{
			MaxAttempts: 8,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		},
		Apply: func(info VersionInfo, raw []byte) error {
			st.set(info, raw)
			return nil
		},
		Logf:    t.Logf,
		Metrics: observe.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, st
}

type appliedState struct {
	mu atomic.Pointer[appliedPair]
}

type appliedPair struct {
	info VersionInfo
	raw  []byte
}

func (s *appliedState) set(info VersionInfo, raw []byte) {
	s.mu.Store(&appliedPair{info: info, raw: append([]byte(nil), raw...)})
}

func (s *appliedState) get() (VersionInfo, []byte) {
	p := s.mu.Load()
	if p == nil {
		return VersionInfo{}, nil
	}
	return p.info, p.raw
}

func TestPullerAppliesAndPollsWithDeltas(t *testing.T) {
	models := testModels(t)
	store, srv := newTestServer(t)
	p, applied := newTestPuller(t, srv.URL, srv.Client())
	ctx := context.Background()

	// Empty registry: a poll is benign, nothing applied.
	if info, changed, err := p.PullNow(ctx); err != nil || changed || info.Version != 0 {
		t.Fatalf("empty poll: info=%+v changed=%t err=%v", info, changed, err)
	}

	if _, _, err := store.Publish(models[0], "", "test", ""); err != nil {
		t.Fatal(err)
	}
	info, changed, err := p.PullNow(ctx)
	if err != nil || !changed || info.Version != 1 {
		t.Fatalf("first pull: info=%+v changed=%t err=%v", info, changed, err)
	}
	gotInfo, raw := applied.get()
	if gotInfo.Version != 1 || !bytes.Equal(raw, models[0]) {
		t.Fatalf("applied: %+v bytes-match=%t", gotInfo, bytes.Equal(raw, models[0]))
	}

	// Unchanged poll is a 304 delta: not changed, not re-applied.
	if _, changed, err := p.PullNow(ctx); err != nil || changed {
		t.Fatalf("unchanged poll: changed=%t err=%v", changed, err)
	}
	if p.met.notModified.Value() != 1 {
		t.Fatalf("client not_modified = %v, want 1", p.met.notModified.Value())
	}

	// Publish v2 → next poll downloads and applies it.
	if _, _, err := store.Publish(models[1], "", "test", ""); err != nil {
		t.Fatal(err)
	}
	if info, changed, err := p.PullNow(ctx); err != nil || !changed || info.Version != 2 {
		t.Fatalf("second pull: info=%+v changed=%t err=%v", info, changed, err)
	}
	if gotInfo, raw := applied.get(); gotInfo.Version != 2 || !bytes.Equal(raw, models[1]) {
		t.Fatalf("applied after publish: %+v", gotInfo)
	}

	// Rollback: pin v1 → next poll converges back to v1.
	if _, _, err := store.Pin(1); err != nil {
		t.Fatal(err)
	}
	if info, changed, err := p.PullNow(ctx); err != nil || !changed || info.Version != 1 {
		t.Fatalf("rollback pull: info=%+v changed=%t err=%v", info, changed, err)
	}
	if gotInfo, raw := applied.get(); gotInfo.Version != 1 || !bytes.Equal(raw, models[0]) {
		t.Fatalf("applied after rollback: %+v", gotInfo)
	}
	if p.Version() != 1 {
		t.Fatalf("puller version = %d, want 1", p.Version())
	}
}

// TestPullerFailedApplyKeepsOldVersion proves a rejected Apply (e.g. the
// hot-swap failed) leaves the puller on its old version so the next poll
// retries the same download.
func TestPullerFailedApplyKeepsOldVersion(t *testing.T) {
	models := testModels(t)
	store, srv := newTestServer(t)
	if _, _, err := store.Publish(models[0], "", "test", ""); err != nil {
		t.Fatal(err)
	}

	fail := true
	p, err := NewPuller(PullerConfig{
		URL:   srv.URL,
		HTTP:  srv.Client(),
		Retry: retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Apply: func(info VersionInfo, raw []byte) error {
			if fail {
				return errors.New("swap refused")
			}
			return nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.PullNow(context.Background()); err == nil {
		t.Fatal("failed apply did not surface")
	}
	if p.Version() != 0 {
		t.Fatalf("failed apply advanced version to %d", p.Version())
	}
	// Next poll retries the same version and succeeds.
	fail = false
	if info, changed, err := p.PullNow(context.Background()); err != nil || !changed || info.Version != 1 {
		t.Fatalf("retry after failed apply: info=%+v changed=%t err=%v", info, changed, err)
	}
}

// TestPullerRidesOutFaultsAndRestarts drives the puller through a
// fault-injecting transport (drops, 503s, torn download bodies) and a
// simulated registry restart, asserting it converges on every published
// version anyway and that the applied bytes are always digest-intact.
func TestPullerRidesOutFaultsAndRestarts(t *testing.T) {
	models := testModels(t)
	dir := t.TempDir()
	store, _ := openTestStore(t, dir)
	if _, _, err := store.Publish(models[0], "", "test", ""); err != nil {
		t.Fatal(err)
	}

	// The handler indirects through an atomic pointer so the "registry
	// process" can restart (new Store over the same directory) without the
	// URL changing; nil means down (connection-level 502 from the stub).
	var handler atomic.Pointer[http.Handler]
	h := NewServer(store).Handler()
	handler.Store(&h)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ph := handler.Load()
		if ph == nil || *ph == nil {
			http.Error(w, "registry restarting", http.StatusServiceUnavailable)
			return
		}
		(*ph).ServeHTTP(w, r)
	}))
	defer srv.Close()

	faulty := faultfs.NewTransport(srv.Client().Transport, faultfs.HTTPConfig{
		Seed:            7,
		DropRate:        0.3,
		ServerErrorRate: 0.2,
		TruncateRate:    0.3,
		TruncateAfter:   128,
		RecoverAfter:    2,
	})
	p, applied := newTestPuller(t, srv.URL, &http.Client{Transport: faulty})
	ctx := context.Background()

	if info, changed, err := p.PullNow(ctx); err != nil || !changed || info.Version != 1 {
		t.Fatalf("pull through faults: info=%+v changed=%t err=%v", info, changed, err)
	}
	if _, raw := applied.get(); !bytes.Equal(raw, models[0]) {
		t.Fatal("applied bytes differ from published model despite digest verification")
	}

	// Restart the registry: down for a few polls, then a fresh Store over
	// the same directory with a new version published.
	handler.Store(nil)
	if _, changed, err := p.PullNow(ctx); err == nil && changed {
		t.Fatal("pull against a down registry applied something")
	}
	store2, _ := openTestStore(t, dir)
	if _, _, err := store2.Publish(models[1], "", "test", ""); err != nil {
		t.Fatal(err)
	}
	h2 := NewServer(store2).Handler()
	handler.Store(&h2)

	deadline := time.Now().Add(10 * time.Second)
	for {
		info, _, err := p.PullNow(ctx)
		if err == nil && info.Version == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("puller did not converge after restart: info=%+v err=%v", info, err)
		}
	}
	if gotInfo, raw := applied.get(); gotInfo.Version != 2 || !bytes.Equal(raw, models[1]) {
		t.Fatalf("applied after restart: %+v", gotInfo)
	}
	if faulty.Faults() == 0 {
		t.Fatal("fault transport injected nothing; test proved nothing")
	}
	t.Logf("rode out %d injected faults (%d drops, %d 503s, %d truncations)",
		faulty.Faults(), faulty.Drops(), faulty.ServerErrors(), faulty.Truncates())
}

// TestPullerRunLoop exercises the background loop end to end: start with
// an empty registry, publish mid-flight, and wait for convergence.
func TestPullerRunLoop(t *testing.T) {
	models := testModels(t)
	store, srv := newTestServer(t)
	p, applied := newTestPuller(t, srv.URL, srv.Client())
	p.cfg.Poll = 10 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	if _, _, err := store.Publish(models[0], "", "test", ""); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if info, _ := applied.get(); info.Version == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run loop did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("run loop exit: %v", err)
	}
}

// TestPublishClient exercises the producer-side helper against real and
// faulty transports.
func TestPublishClient(t *testing.T) {
	models := testModels(t)
	_, srv := newTestServer(t)
	pol := retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

	res, err := Publish(context.Background(), srv.Client(), srv.URL, models[0], "fp-1", "test", pol)
	if err != nil || res.Status != "accepted" || res.Version != 1 {
		t.Fatalf("publish: %+v err=%v", res, err)
	}
	// Idempotent retry: same bytes acknowledged as duplicate.
	res, err = Publish(context.Background(), srv.Client(), srv.URL, models[0], "fp-1", "test", pol)
	if err != nil || res.Status != "duplicate" || res.Version != 1 {
		t.Fatalf("re-publish: %+v err=%v", res, err)
	}
	// Conflict is permanent: no retry storm, a clear error.
	if _, err = Publish(context.Background(), srv.Client(), srv.URL, models[1], "fp-1", "test", pol); err == nil {
		t.Fatal("conflicting publish succeeded")
	}

	// Through a dropping transport the publish still lands exactly once.
	faulty := faultfs.NewTransport(srv.Client().Transport, faultfs.HTTPConfig{
		Seed:     11,
		DropRate: 0.5,
	})
	res, err = Publish(context.Background(), &http.Client{Transport: faulty},
		srv.URL, models[1], "fp-2", "test", pol)
	if err != nil || res.Version != 2 {
		t.Fatalf("faulty publish: %+v err=%v", res, err)
	}
}

// TestPullerHonorsRetryAfterFloor: a 503 carrying Retry-After must pace
// the next attempt at least that far out, even when the policy's own
// backoff would come back sooner.
func TestPullerHonorsRetryAfterFloor(t *testing.T) {
	var calls atomic.Int64
	var gaps []time.Duration
	var last time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if !last.IsZero() {
			gaps = append(gaps, now.Sub(last))
		}
		last = now
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()

	p, _ := NewPuller(PullerConfig{
		URL:  srv.URL,
		HTTP: srv.Client(),
		Retry: retry.Policy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
		},
		Apply: func(VersionInfo, []byte) error { return nil },
		Logf:  t.Logf,
	})
	if _, changed, err := p.PullNow(context.Background()); err != nil || changed {
		t.Fatalf("PullNow: changed=%t err=%v", changed, err)
	}
	if len(gaps) != 2 {
		t.Fatalf("attempts = %d, want 3 (two 503s then 404)", calls.Load())
	}
	for i, g := range gaps {
		if g < time.Second {
			t.Errorf("gap %d after 503 = %v, want >= the 1s Retry-After floor", i, g)
		}
	}
}

// TestPullerBreakerCollapsesRetryLoop: with the breaker open, a poll round
// costs the registry zero requests and fails fast with ErrBreakerOpen.
func TestPullerBreakerCollapsesRetryLoop(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	clock := time.Unix(1_700_000_000, 0)
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	br := resilience.NewBreaker(resilience.BreakerConfig{
		Name:                "registry_pull",
		ConsecutiveFailures: 3,
		OpenTimeout:         10 * time.Second,
		Clock:               now,
	})
	p, _ := NewPuller(PullerConfig{
		URL:  srv.URL,
		HTTP: srv.Client(),
		Retry: retry.Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    time.Millisecond,
		},
		Breaker: br,
		Apply:   func(VersionInfo, []byte) error { return nil },
		Logf:    t.Logf,
	})
	// First round: three 503s trip the breaker.
	if _, _, err := p.PullNow(context.Background()); err == nil {
		t.Fatal("first round must fail")
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("upstream requests in round 1 = %d, want 3", got)
	}
	if br.State() != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", br.State())
	}
	// Second round: breaker open, zero upstream requests, fast failure.
	_, _, err := p.PullNow(context.Background())
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("open-breaker round error = %v, want ErrBreakerOpen", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("upstream requests after open-breaker round = %d, want still 3", got)
	}
	// Heal the upstream and elapse the open window: the probe closes it.
	srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
	})
	clockMu.Lock()
	clock = clock.Add(11 * time.Second)
	clockMu.Unlock()
	if _, changed, err := p.PullNow(context.Background()); err != nil || changed {
		t.Fatalf("post-heal round: changed=%t err=%v", changed, err)
	}
	if br.State() != resilience.BreakerClosed {
		t.Fatalf("breaker state after heal = %v, want closed", br.State())
	}
}
