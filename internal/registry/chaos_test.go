package registry

// Durability chaos: torn manifests, bit-flipped stored versions, crash
// debris, and concurrent publishes. The invariant under every fault is the
// same — the registry never serves bytes that fail digest verification,
// and a crash mid-publish leaves either nothing visible or a complete,
// adoptable version.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/observe"
)

// TestTornManifestRebuild kills the manifest mid-write (simulated by
// tearing the file) and proves the reopened registry rebuilds identical
// state from the self-describing version directories.
func TestTornManifestRebuild(t *testing.T) {
	models := testModels(t)
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	for _, m := range models[:2] {
		if _, _, err := st.Publish(m, "", "test", ""); err != nil {
			t.Fatal(err)
		}
	}
	_, _, want := st.List()

	// Tear the manifest to half its size — a crash mid-rename cannot
	// produce this (atomicio renames), but a corrupt disk can.
	if err := faultfs.Tear(filepath.Join(dir, manifestName), 20); err != nil {
		t.Fatal(err)
	}
	st2, _ := openTestStore(t, dir)
	cur, pinned, got := st2.List()
	if cur != 2 || pinned || len(got) != len(want) {
		t.Fatalf("rebuild: current=%d pinned=%t versions=%d, want 2/false/%d", cur, pinned, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rebuild changed version record %d: %+v != %+v", i, got[i], want[i])
		}
	}

	// Remove the manifest entirely: same rebuild.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	st3, _ := openTestStore(t, dir)
	if cur, _, got := st3.List(); cur != 2 || len(got) != 2 {
		t.Fatalf("rebuild without manifest: current=%d versions=%d", cur, len(got))
	}
}

// TestFlipByteQuarantinedOnRescan corrupts a stored version on disk and
// proves the reopened registry quarantines it: dropped from the manifest,
// moved under quarantine/, current falls back, and the bytes are never
// served again.
func TestFlipByteQuarantinedOnRescan(t *testing.T) {
	models := testModels(t)
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	for _, m := range models[:2] {
		if _, _, err := st.Publish(m, "", "test", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := faultfs.FlipByte(filepath.Join(dir, "v2", modelName), 100, 0x40); err != nil {
		t.Fatal(err)
	}

	st2, reg := openTestStore(t, dir)
	cur, _, versions := st2.List()
	if cur != 1 || len(versions) != 1 || versions[0].Version != 1 {
		t.Fatalf("after corrupt rescan: current=%d versions=%+v, want fallback to v1 only", cur, versions)
	}
	if _, _, err := st2.Get(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt version still addressable: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineName, "v2", modelName)); err != nil {
		t.Fatalf("corrupt version not quarantined: %v", err)
	}
	if got := metricValue(t, reg, "autodetect_registry_versions"); got != 1 {
		t.Fatalf("versions gauge = %v, want 1", got)
	}
}

// TestFlipByteQuarantinedOnGet corrupts a version while the registry is
// running and proves the serving path catches it: Get re-verifies, reports
// ErrCorrupt, quarantines, and the current pointer falls back.
func TestFlipByteQuarantinedOnGet(t *testing.T) {
	models := testModels(t)
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	for _, m := range models[:2] {
		if _, _, err := st.Publish(m, "", "test", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := faultfs.FlipByte(filepath.Join(dir, "v2", modelName), 64, 0x01); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("get of corrupted version: err=%v, want ErrCorrupt", err)
	}
	if cur, _, versions := st.List(); cur != 1 || len(versions) != 1 {
		t.Fatalf("after quarantine: current=%d versions=%d, want 1/1", cur, len(versions))
	}
	// The fallback version still serves intact bytes.
	if _, raw, err := st.Get(1); err != nil || !bytes.Equal(raw, models[0]) {
		t.Fatalf("fallback serve: err=%v", err)
	}
}

// TestCrashMidPublishLeavesNoPartialVersion plants the two possible crash
// remnants of an interrupted publish — a bare version directory and one
// with only model.bin (the crash happened before meta.bin, i.e. before the
// publish was acknowledged) — and proves neither becomes visible. A
// complete directory missing only from the manifest IS adopted: its
// meta.bin made the publish durable.
func TestCrashMidPublishLeavesNoPartialVersion(t *testing.T) {
	models := testModels(t)
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	if _, _, err := st.Publish(models[0], "", "test", ""); err != nil {
		t.Fatal(err)
	}

	// Crash remnant 1: bare directory.
	if err := os.MkdirAll(filepath.Join(dir, "v2"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Crash remnant 2: model.bin landed, meta.bin did not.
	if err := os.MkdirAll(filepath.Join(dir, "v3"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "v3", modelName), models[1], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, _ := openTestStore(t, dir)
	cur, _, versions := st2.List()
	if cur != 1 || len(versions) != 1 {
		t.Fatalf("partial versions became visible: current=%d versions=%+v", cur, versions)
	}
	for _, v := range []string{"v2", "v3"} {
		if _, err := os.Stat(filepath.Join(dir, v)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("crash debris %s still present (err=%v)", v, err)
		}
	}

	// A republish after the crash gets a fresh version number and works.
	info, dup, err := st2.Publish(models[1], "", "test", "")
	if err != nil || dup {
		t.Fatalf("republish after crash: %+v dup=%t err=%v", info, dup, err)
	}
}

// TestConcurrentPublish hammers one store from many goroutines: identical
// bytes must collapse to exactly one stored version (the rest acknowledged
// as duplicates), and divergent bytes racing on one fingerprint must end
// with exactly one winner and conflicts for the others.
func TestConcurrentPublish(t *testing.T) {
	models := testModels(t)
	st, _ := openTestStore(t, t.TempDir())

	const n = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, duplicates := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, dup, err := st.Publish(models[0], "fp-same", "test", "")
			if err != nil {
				t.Errorf("concurrent identical publish: %v", err)
				return
			}
			mu.Lock()
			if dup {
				duplicates++
			} else {
				accepted++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if accepted != 1 || duplicates != n-1 {
		t.Fatalf("identical race: accepted=%d duplicates=%d, want 1/%d", accepted, duplicates, n-1)
	}

	// Divergent bytes racing on one fingerprint: one wins, rest conflict.
	var wins, conflicts int
	wg = sync.WaitGroup{}
	for i := 0; i < n; i++ {
		m := models[1+i%2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, dup, err := st.Publish(m, "fp-contested", "test", "")
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.Is(err, ErrConflict):
				conflicts++
			case err == nil && !dup:
				wins++
			case err == nil && dup:
				// Same-bytes duplicate of the winner: fine.
			default:
				t.Errorf("divergent race: dup=%t err=%v", dup, err)
			}
		}()
	}
	wg.Wait()
	if wins != 1 || conflicts == 0 {
		t.Fatalf("divergent race: wins=%d conflicts=%d, want exactly 1 winner", wins, conflicts)
	}

	// The store is still coherent: reopen and re-verify.
	st2, _ := openTestStore(t, st.Dir())
	if _, _, versions := st2.List(); len(versions) != 2 {
		t.Fatalf("after races: %d versions, want 2", len(versions))
	}
}

// metricValue renders the registry's text exposition and extracts one
// un-labeled sample.
func metricValue(t *testing.T, reg *observe.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad sample %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
