package registry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer wires a store into an httptest server, returning both.
func newTestServer(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	st, _ := openTestStore(t, t.TempDir())
	srv := httptest.NewServer(NewServer(st).Handler())
	t.Cleanup(srv.Close)
	return st, srv
}

func httpPublish(t *testing.T, base string, raw []byte, fingerprint string) (*http.Response, publishResponse) {
	t.Helper()
	url := base + PathModels + "?source=test"
	if fingerprint != "" {
		url += "&fingerprint=" + fingerprint
	}
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr publishResponse
	_ = json.NewDecoder(resp.Body).Decode(&pr)
	return resp, pr
}

func TestHTTPPublishFetchPin(t *testing.T) {
	models := testModels(t)
	st, srv := newTestServer(t)

	// Publish ladder over HTTP: accepted, duplicate, conflict, invalid.
	resp, pr := httpPublish(t, srv.URL, models[0], "fp-1")
	if resp.StatusCode != http.StatusOK || pr.Status != "accepted" || pr.Version != 1 {
		t.Fatalf("publish: status=%d body=%+v", resp.StatusCode, pr)
	}
	resp, pr = httpPublish(t, srv.URL, models[0], "fp-1")
	if resp.StatusCode != http.StatusOK || pr.Status != "duplicate" || pr.Version != 1 {
		t.Fatalf("duplicate: status=%d body=%+v", resp.StatusCode, pr)
	}
	resp, _ = httpPublish(t, srv.URL, models[1], "fp-1")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflict: status=%d, want 409", resp.StatusCode)
	}
	resp, _ = httpPublish(t, srv.URL, []byte("garbage"), "")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("invalid publish: status=%d retry-after=%q, want 503 + Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// GET current: headers + exact bytes.
	resp, err := http.Get(srv.URL + PathModels + "/current")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(raw, models[0]) {
		t.Fatalf("get current: status=%d, bytes-match=%t", resp.StatusCode, bytes.Equal(raw, models[0]))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || resp.Header.Get(HeaderVersion) != "1" || resp.Header.Get(HeaderSHA256) == "" {
		t.Fatalf("get current headers: etag=%q version=%q", etag, resp.Header.Get(HeaderVersion))
	}

	// Conditional re-poll: 304, no body, counted.
	before := st.met.notModified.Value()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+PathModels+"/current", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("conditional poll: status=%d body=%d bytes, want 304 with no body", resp.StatusCode, len(body))
	}
	if after := st.met.notModified.Value(); after != before+1 {
		t.Fatalf("not_modified counter: %v → %v, want +1", before, after)
	}

	// Publish v2; the old validator now misses and the full body returns.
	if resp, pr = httpPublish(t, srv.URL, models[1], "fp-2"); pr.Version != 2 {
		t.Fatalf("publish v2: %+v", pr)
	}
	req, _ = http.NewRequest(http.MethodGet, srv.URL+PathModels+"/current", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(raw, models[1]) {
		t.Fatalf("changed poll: status=%d, want 200 with v2 bytes", resp.StatusCode)
	}

	// List reflects both versions.
	resp, err = http.Get(srv.URL + PathModels)
	if err != nil {
		t.Fatal(err)
	}
	var lr listResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lr.Current != 2 || lr.Pinned || len(lr.Versions) != 2 {
		t.Fatalf("list: %+v", lr)
	}

	// Pin v1 over HTTP: rollback reported, current flips.
	resp, body2 := postPin(t, srv.URL, `{"version": 1}`)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body2, `"rollback":true`) {
		t.Fatalf("pin: status=%d body=%s", resp.StatusCode, body2)
	}
	if cur, pinnedFlag, _ := st.List(); cur != 1 || !pinnedFlag {
		t.Fatalf("after pin: current=%d pinned=%t", cur, pinnedFlag)
	}
	// Unpin to latest.
	if resp, _ = postPin(t, srv.URL, `{"latest": true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("unpin: status=%d", resp.StatusCode)
	}
	if cur, pinnedFlag, _ := st.List(); cur != 2 || pinnedFlag {
		t.Fatalf("after unpin: current=%d pinned=%t", cur, pinnedFlag)
	}

	// Error paths: missing version, bad version, bad pin body.
	for _, tc := range []struct {
		path string
		want int
	}{
		{PathModels + "/99", http.StatusNotFound},
		{PathModels + "/zero", http.StatusBadRequest},
	} {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: status=%d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
	if resp, _ := postPin(t, srv.URL, `{"version": 99}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pin missing: status=%d, want 404", resp.StatusCode)
	}
	if resp, _ := postPin(t, srv.URL, `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty pin: status=%d, want 400", resp.StatusCode)
	}
}

func TestHTTPGetBeforeFirstPublish(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + PathModels + "/current")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty registry current: status=%d, want 404", resp.StatusCode)
	}
}

func TestRouteLabelBounded(t *testing.T) {
	for path, want := range map[string]string{
		PathModels:              PathModels,
		PathModels + "/17":      PathModels + "/{version}",
		PathModels + "/current": PathModels + "/{version}",
		PathPin:                 PathPin,
		"/metrics":              "/metrics",
		"/anything/else":        "other",
	} {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		if got := RouteLabel(r); got != want {
			t.Errorf("RouteLabel(%s) = %q, want %q", path, got, want)
		}
	}
}

func postPin(t *testing.T, base, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(base+PathPin, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, string(raw)
}
