package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/observe"
	"repro/internal/resilience"
)

// Server is the registry's HTTP surface over a Store. Mount Handler on any
// mux; autodetectd wraps it in the standard resilience chain.
type Server struct {
	store *Store
}

// NewServer wraps store for HTTP serving.
func NewServer(store *Store) *Server { return &Server{store: store} }

// Handler routes the registry API:
//
//	POST /registry/v1/models            publish (idempotent)
//	GET  /registry/v1/models            list versions + current pointer
//	GET  /registry/v1/models/{version}  fetch; {version} is an integer or
//	                                    "current"; honors If-None-Match
//	POST /registry/v1/pin               pin / rollback / unpin-to-latest
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathModels, s.handlePublish)
	mux.HandleFunc("GET "+PathModels, s.handleList)
	mux.HandleFunc("GET "+PathModels+"/{version}", s.handleGet)
	mux.HandleFunc("POST "+PathPin, s.handlePin)
	return mux
}

// RouteLabel bounds the route label cardinality of the registry server's
// HTTP metrics; version numbers collapse into one label.
func RouteLabel(r *http.Request) string {
	switch {
	case r.URL.Path == PathModels || r.URL.Path == PathPin || r.URL.Path == "/metrics" || r.URL.Path == "/v1/livez":
		return r.URL.Path
	case strings.HasPrefix(r.URL.Path, PathModels+"/"):
		return PathModels + "/{version}"
	default:
		return "other"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, r *http.Request, status int, msg string) {
	writeJSON(w, status, map[string]string{
		"error":      msg,
		"request_id": resilience.RequestIDFrom(r.Context()),
	})
}

// writeRetryable is the 503 + Retry-After shape shared with distbuild: the
// condition is expected to clear, the client should retry.
func writeRetryable(w http.ResponseWriter, r *http.Request, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(resilience.DefaultRetryAfterSeconds))
	writeErr(w, r, http.StatusServiceUnavailable, msg)
}

// publishResponse is the body of publish and pin responses.
type publishResponse struct {
	Status  string `json:"status"` // "accepted", "duplicate", "pinned"
	Version int    `json:"version"`
	SHA256  string `json:"sha256"`
	Bytes   int64  `json:"bytes"`
	Current int    `json:"current"`
	// Rollback is set on pin responses that moved current backwards.
	Rollback bool `json:"rollback,omitempty"`
}

// handlePublish ingests model bytes. The decision ladder mirrors the
// distbuild shard upload:
//
//	body read died mid-flight      → 503 + Retry-After (re-upload)
//	bytes fail model validation    → 503 + Retry-After (a torn upload is
//	                                 indistinguishable from corruption)
//	divergent bytes, same build    → 409 (permanent)
//	byte-identical re-upload       → 200 "duplicate"
//	valid + first                  → persist durably, 200 "accepted"
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	met := s.store.met
	raw, err := io.ReadAll(io.LimitReader(r.Body, s.store.maxModel+1))
	if err != nil {
		met.reject("integrity")
		writeRetryable(w, r, "model upload interrupted, retry")
		return
	}
	if int64(len(raw)) > s.store.maxModel {
		met.reject("request")
		writeErr(w, r, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("model exceeds %d bytes", s.store.maxModel))
		return
	}
	q := r.URL.Query()
	source := q.Get("source")
	if source == "" {
		source = "api"
	}
	// Prefer the span context the tracing middleware already joined (the
	// producer's build trace); fall back to parsing the raw header for
	// bare mounts without the middleware. ParseTraceparent's strictness is
	// the validation: hostile or malformed values are dropped, never stored.
	traceparent := observe.SpanContextFrom(r.Context()).Traceparent()
	if traceparent == "" {
		if sc, ok := observe.ParseTraceparent(r.Header.Get(observe.HeaderTraceparent)); ok {
			traceparent = sc.Traceparent()
		}
	}
	info, dup, err := s.store.Publish(raw, q.Get("fingerprint"), source, traceparent)
	switch {
	case errors.Is(err, ErrInvalidModel):
		met.reject("integrity")
		writeRetryable(w, r, "model failed integrity check, re-upload: "+err.Error())
		return
	case errors.Is(err, ErrConflict):
		met.reject("conflict")
		writeErr(w, r, http.StatusConflict, err.Error())
		return
	case err != nil:
		writeErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	status := "accepted"
	if dup {
		status = "duplicate"
	}
	cur, _, _ := s.store.List()
	writeJSON(w, http.StatusOK, publishResponse{
		Status: status, Version: info.Version, SHA256: info.SHA256,
		Bytes: info.Bytes, Current: cur,
	})
}

// listResponse is the body of GET /registry/v1/models.
type listResponse struct {
	Current  int           `json:"current"`
	Pinned   bool          `json:"pinned"`
	Versions []VersionInfo `json:"versions"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	cur, pinned, versions := s.store.List()
	if versions == nil {
		versions = []VersionInfo{}
	}
	writeJSON(w, http.StatusOK, listResponse{Current: cur, Pinned: pinned, Versions: versions})
}

// handleGet serves one version's bytes. "current" resolves the pin. A
// matching If-None-Match answers 304 with no body — the delta path that
// makes fleet-wide polling cheap.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	met := s.store.met
	var info VersionInfo
	var ok bool
	switch v := r.PathValue("version"); v {
	case "current":
		info, ok = s.store.Current()
		if !ok {
			writeErr(w, r, http.StatusNotFound, "no model published yet")
			return
		}
	default:
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			met.reject("request")
			writeErr(w, r, http.StatusBadRequest, "version must be a positive integer or \"current\"")
			return
		}
		if info, ok = s.store.Info(n); !ok {
			writeErr(w, r, http.StatusNotFound, fmt.Sprintf("version %d not found", n))
			return
		}
	}

	etag := `"` + info.SHA256 + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set(HeaderVersion, strconv.Itoa(info.Version))
	w.Header().Set(HeaderSHA256, info.SHA256)
	w.Header().Set(HeaderPublished, strconv.FormatInt(info.PublishedUnixMs, 10))
	if info.Source != "" {
		w.Header().Set(HeaderSource, info.Source)
	}
	if info.Traceparent != "" {
		w.Header().Set(HeaderTraceparent, info.Traceparent)
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, info.SHA256) {
		met.inc(met.notModified)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	start := time.Now()
	info, raw, err := s.store.Get(info.Version)
	switch {
	case errors.Is(err, ErrCorrupt):
		// Quarantined just now; the pointer already fell back, so the
		// client's next poll converges.
		met.reject("integrity")
		writeRetryable(w, r, err.Error())
		return
	case errors.Is(err, ErrNotFound):
		writeErr(w, r, http.StatusNotFound, err.Error())
		return
	case err != nil:
		writeErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(info.Bytes, 10))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(raw); err == nil {
		met.observePull(time.Since(start).Seconds())
	}
}

// etagMatch reports whether an If-None-Match header names the digest,
// tolerating quoting and weak validators.
func etagMatch(header, sha string) bool {
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimSpace(part)
		tag = strings.TrimPrefix(tag, "W/")
		tag = strings.Trim(tag, `"`)
		if tag == sha || tag == "*" {
			return true
		}
	}
	return false
}

// pinRequest is the body of POST /registry/v1/pin: either a concrete
// version to pin (rollback when older than current) or latest=true to
// unpin and track new publishes again.
type pinRequest struct {
	Version int  `json:"version"`
	Latest  bool `json:"latest"`
}

func (s *Server) handlePin(w http.ResponseWriter, r *http.Request) {
	met := s.store.met
	var req pinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		met.reject("request")
		writeErr(w, r, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if !req.Latest && req.Version < 1 {
		met.reject("request")
		writeErr(w, r, http.StatusBadRequest, `pin needs "version" >= 1 or "latest": true`)
		return
	}
	target := req.Version
	if req.Latest {
		target = 0
	}
	info, rollback, err := s.store.Pin(target)
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, r, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, ErrCorrupt):
		// The pin target failed digest verification and was quarantined:
		// the request names a version that can never be served.
		met.reject("integrity")
		writeErr(w, r, http.StatusConflict, err.Error())
		return
	case err != nil:
		writeErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, publishResponse{
		Status: "pinned", Version: info.Version, SHA256: info.SHA256,
		Bytes: info.Bytes, Current: info.Version, Rollback: rollback,
	})
}
