package registry

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"
)

var registryBenchOut = flag.String("registry.benchout", "",
	"write the registry pull-latency smoke result (BENCH_registry.json) to this path")

// registryBench is the BENCH_registry.json payload: cold pulls download the
// full model body; conditional polls are the fleet's steady-state 304s.
type registryBench struct {
	Benchmark       string  `json:"benchmark"`
	ModelBytes      int     `json:"model_bytes"`
	Pulls           int     `json:"pulls"`
	NumCPU          int     `json:"num_cpu"`
	ColdP50Millis   float64 `json:"cold_pull_p50_ms"`
	ColdP99Millis   float64 `json:"cold_pull_p99_ms"`
	Cond304P50      float64 `json:"conditional_poll_p50_ms"`
	Cond304P99      float64 `json:"conditional_poll_p99_ms"`
	NotModifiedHits float64 `json:"not_modified_hits"`
}

func quantileMillis(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// TestRegistrySmoke measures fleet pull latency against a live registry
// server: cold pulls (full body + digest verification) and warm conditional
// polls (304 deltas), writing p50/p99 to -registry.benchout (CI's
// registry-smoke job sets it; plain `go test` skips).
func TestRegistrySmoke(t *testing.T) {
	if *registryBenchOut == "" {
		t.Skip("registry smoke disabled; set -registry.benchout to enable")
	}
	models := testModels(t)
	st, srv := newTestServer(t)
	if _, _, err := st.Publish(models[0], "bench", "bench", ""); err != nil {
		t.Fatal(err)
	}

	const pulls = 100
	cold := make([]time.Duration, 0, pulls)
	warm := make([]time.Duration, 0, pulls)
	for i := 0; i < pulls; i++ {
		// Cold: a fresh puller with no ETag downloads the whole model.
		p, _ := newTestPuller(t, srv.URL, srv.Client())
		start := time.Now()
		if _, changed, err := p.PullNow(context.Background()); err != nil || !changed {
			t.Fatalf("cold pull %d: changed=%t err=%v", i, changed, err)
		}
		cold = append(cold, time.Since(start))
		// Warm: the same puller's next poll is a conditional 304.
		start = time.Now()
		if _, changed, err := p.PullNow(context.Background()); err != nil || changed {
			t.Fatalf("warm poll %d: changed=%t err=%v", i, changed, err)
		}
		warm = append(warm, time.Since(start))
	}
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })

	out := registryBench{
		Benchmark:       "registry_pull_latency",
		ModelBytes:      len(models[0]),
		Pulls:           pulls,
		NumCPU:          runtime.NumCPU(),
		ColdP50Millis:   quantileMillis(cold, 0.50),
		ColdP99Millis:   quantileMillis(cold, 0.99),
		Cond304P50:      quantileMillis(warm, 0.50),
		Cond304P99:      quantileMillis(warm, 0.99),
		NotModifiedHits: st.met.notModified.Value(),
	}
	if out.NotModifiedHits != pulls {
		t.Fatalf("server counted %v 304s, want %d", out.NotModifiedHits, pulls)
	}
	t.Logf("cold p50=%.2fms p99=%.2fms; 304 p50=%.2fms p99=%.2fms over %d pulls of %d bytes",
		out.ColdP50Millis, out.ColdP99Millis, out.Cond304P50, out.Cond304P99, pulls, out.ModelBytes)
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(*registryBenchOut); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(*registryBenchOut, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
