package registry

import "repro/internal/observe"

// metrics is the nil-safe bundle of registry instrument families,
// following the distbuild convention: a nil registry produces a zero
// bundle whose methods all no-op.
type metrics struct {
	versions       *observe.Gauge      // autodetect_registry_versions
	currentVersion *observe.Gauge      // autodetect_registry_current_version
	publishes      *observe.Counter    // autodetect_registry_publishes_total
	duplicates     *observe.Counter    // autodetect_registry_duplicates_total
	pins           *observe.Counter    // autodetect_registry_pins_total
	rollbacks      *observe.Counter    // autodetect_registry_rollbacks_total
	quarantined    *observe.Counter    // autodetect_registry_quarantined_total
	rejections     *observe.CounterVec // autodetect_registry_rejections_total{reason}
	notModified    *observe.Counter    // autodetect_registry_not_modified_total
	pullSeconds    *observe.Histogram  // autodetect_registry_pull_seconds
}

func newMetrics(r *observe.Registry) *metrics {
	if r == nil {
		return &metrics{}
	}
	return &metrics{
		versions: r.Gauge("autodetect_registry_versions",
			"Intact model versions stored in the registry."),
		currentVersion: r.Gauge("autodetect_registry_current_version",
			"The pinned \"current\" model version served to the fleet (0 before the first publish)."),
		publishes: r.Counter("autodetect_registry_publishes_total",
			"Model versions accepted and durably stored."),
		duplicates: r.Counter("autodetect_registry_duplicates_total",
			"Byte-identical re-publishes acknowledged without storing a new version."),
		pins: r.Counter("autodetect_registry_pins_total",
			"Current-pointer moves via POST /registry/v1/pin."),
		rollbacks: r.Counter("autodetect_registry_rollbacks_total",
			"Pins that moved the current pointer to an older version."),
		quarantined: r.Counter("autodetect_registry_quarantined_total",
			"Stored versions that failed digest re-verification and were quarantined."),
		rejections: r.CounterVec("autodetect_registry_rejections_total",
			"Refused registry requests, by reason (integrity, conflict, request).",
			"reason"),
		notModified: r.Counter("autodetect_registry_not_modified_total",
			"Conditional model fetches answered 304 Not Modified (no-body delta polls)."),
		pullSeconds: r.Histogram("autodetect_registry_pull_seconds",
			"Latency of full model downloads served by GET /registry/v1/models/{version}.", nil),
	}
}

func (m *metrics) inc(c *observe.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (m *metrics) setGauge(g *observe.Gauge, v float64) {
	if g != nil {
		g.Set(v)
	}
}

func (m *metrics) reject(reason string) {
	if m.rejections != nil {
		m.rejections.With(reason).Inc()
	}
}

func (m *metrics) observePull(seconds float64) {
	if m.pullSeconds != nil {
		m.pullSeconds.Observe(seconds)
	}
}

// pullerMetrics is the replica-side bundle: how this replica's Puller is
// interacting with the registry.
type pullerMetrics struct {
	polls       *observe.Counter // autodetect_registry_client_polls_total
	notModified *observe.Counter // autodetect_registry_client_not_modified_total
	pulls       *observe.Counter // autodetect_registry_client_pulls_total
	errors      *observe.Counter // autodetect_registry_client_errors_total
	pullSeconds *observe.Histogram
}

func newPullerMetrics(r *observe.Registry) *pullerMetrics {
	if r == nil {
		return &pullerMetrics{}
	}
	return &pullerMetrics{
		polls: r.Counter("autodetect_registry_client_polls_total",
			"Registry polls issued by this replica's puller."),
		notModified: r.Counter("autodetect_registry_client_not_modified_total",
			"Polls answered 304 Not Modified (model unchanged)."),
		pulls: r.Counter("autodetect_registry_client_pulls_total",
			"Model versions downloaded, digest-verified, and applied."),
		errors: r.Counter("autodetect_registry_client_errors_total",
			"Poll rounds that failed after retries (registry down, torn bodies, apply failures)."),
		pullSeconds: r.Histogram("autodetect_registry_client_pull_seconds",
			"Latency of successful download-and-apply rounds on this replica.", nil),
	}
}

func (m *pullerMetrics) inc(c *observe.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (m *pullerMetrics) observePull(seconds float64) {
	if m.pullSeconds != nil {
		m.pullSeconds.Observe(seconds)
	}
}
