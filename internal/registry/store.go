package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/observe"
)

// Options configures Open.
type Options struct {
	// MaxModelBytes caps accepted model payloads (default
	// DefaultMaxModelBytes).
	MaxModelBytes int64
	// Metrics, when set, receives the autodetect_registry_* families.
	Metrics *observe.Registry
	// Logf, when set, receives one line per store event (nil discards).
	Logf func(format string, args ...any)

	// now is the injectable clock for publish timestamps (tests).
	now func() time.Time
}

// Store is the durable versioned model store. All methods are safe for
// concurrent use; Publish and Pin serialize on one mutex, Get copies the
// version record under the lock and reads the model file outside it.
type Store struct {
	dir      string
	maxModel int64
	met      *metrics
	logf     func(format string, args ...any)
	now      func() time.Time

	mu  sync.Mutex
	man manifestState
}

// Open opens (creating if needed) the registry under dir, replaying the
// durability protocol:
//
//   - the manifest is read if intact; a torn or missing manifest is
//     rebuilt from the version directories (each is self-describing)
//   - every version directory is re-verified: meta.bin must decode and
//     v<N>/model.bin must hash to the recorded SHA-256
//   - versions that fail re-verification are quarantined (moved under
//     quarantine/, dropped from the manifest, never served)
//   - version directories without any meta.bin are crash debris from an
//     unacknowledged publish and are removed
//   - a complete version directory missing from the manifest (crash
//     between meta.bin and the manifest write) is adopted — a publish is
//     durable the moment its meta.bin lands
//
// The current pointer survives when its version does; otherwise it falls
// back to the newest intact version and the pin is released.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("registry: directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxModel: opts.MaxModelBytes,
		met:      newMetrics(opts.Metrics),
		logf:     opts.Logf,
		now:      opts.now,
	}
	if s.maxModel <= 0 {
		s.maxModel = DefaultMaxModelBytes
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if s.now == nil {
		s.now = time.Now
	}
	if err := s.rescan(); err != nil {
		return nil, err
	}
	s.registerGauges(opts.Metrics)
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) manifestPath() string    { return filepath.Join(s.dir, manifestName) }
func (s *Store) versionDir(n int) string { return filepath.Join(s.dir, fmt.Sprintf("v%d", n)) }
func (s *Store) modelPath(n int) string  { return filepath.Join(s.versionDir(n), modelName) }
func (s *Store) metaPath(n int) string   { return filepath.Join(s.versionDir(n), metaName) }
func (s *Store) quarantinePath() string  { return filepath.Join(s.dir, quarantineName) }

// rescan rebuilds the in-memory manifest from disk at Open time.
func (s *Store) rescan() error {
	loaded, manifestIntact := s.loadManifest()

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("registry: scanning %s: %w", s.dir, err)
	}
	inLoaded := make(map[int]bool, len(loaded.Versions))
	for _, v := range loaded.Versions {
		inLoaded[v.Version] = true
	}

	var versions []VersionInfo
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		n, ok := parseVersionDir(e.Name())
		if !ok {
			continue
		}
		info, verr := s.verifyVersion(n)
		if verr == nil {
			versions = append(versions, info)
			continue
		}
		if errors.Is(verr, os.ErrNotExist) && !inLoaded[n] {
			// No meta.bin and never acknowledged: debris from a crash
			// mid-publish. Remove it so no partial version is visible.
			s.logf("registry: removing incomplete version directory %s (%v)", e.Name(), verr)
			if err := os.RemoveAll(s.versionDir(n)); err != nil {
				return fmt.Errorf("registry: removing incomplete v%d: %w", n, err)
			}
			continue
		}
		// Acknowledged (or ambiguous) but no longer verifiable: quarantine.
		if err := s.quarantineDir(n, verr); err != nil {
			return err
		}
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i].Version < versions[j].Version })

	man := manifestState{Versions: versions}
	if manifestIntact && versionPresent(versions, loaded.Current) {
		man.Current, man.Pinned = loaded.Current, loaded.Pinned
	} else if len(versions) > 0 {
		man.Current = versions[len(versions)-1].Version
	}

	s.mu.Lock()
	s.man = man
	changed := !manifestIntact || !manifestEqual(loaded, man)
	var werr error
	if changed && (len(man.Versions) > 0 || manifestIntact) {
		werr = s.writeManifestLocked()
	}
	s.syncGaugesLocked()
	s.mu.Unlock()
	if werr != nil {
		return werr
	}
	if !manifestIntact && len(man.Versions) > 0 {
		s.logf("registry: manifest rebuilt from %d version directories, current v%d",
			len(man.Versions), man.Current)
	}
	return nil
}

// loadManifest reads manifest.bin; a missing, torn, or undecodable file
// reports intact=false so rescan rebuilds from the version directories.
func (s *Store) loadManifest() (manifestState, bool) {
	var man manifestState
	f, err := os.Open(s.manifestPath())
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.logf("registry: manifest unreadable, rebuilding: %v", err)
		}
		return man, false
	}
	defer f.Close()
	if err := decodeEnvelopeJSON(f, magicManifest, maxManifestBytes, &man); err != nil {
		s.logf("registry: manifest failed integrity check, rebuilding from version directories: %v", err)
		return manifestState{}, false
	}
	return man, true
}

// verifyVersion re-verifies one version directory end to end: meta.bin
// decodes, the version number matches, model.bin exists, and its bytes
// hash to the recorded digest. os.ErrNotExist (missing meta) means the
// publish was never acknowledged.
func (s *Store) verifyVersion(n int) (VersionInfo, error) {
	var info VersionInfo
	f, err := os.Open(s.metaPath(n))
	if err != nil {
		return info, err
	}
	derr := decodeEnvelopeJSON(f, magicMeta, maxMetaBytes, &info)
	f.Close()
	if derr != nil {
		return info, fmt.Errorf("meta: %w", derr)
	}
	if info.Version != n {
		return info, fmt.Errorf("meta records version %d in directory v%d", info.Version, n)
	}
	raw, err := os.ReadFile(s.modelPath(n))
	if err != nil {
		return info, fmt.Errorf("model: %w", err)
	}
	if int64(len(raw)) != info.Bytes {
		return info, fmt.Errorf("model is %d bytes, meta records %d", len(raw), info.Bytes)
	}
	if sum := shaHex(raw); sum != info.SHA256 {
		return info, fmt.Errorf("model digest %s does not match recorded %s", sum, info.SHA256)
	}
	return info, nil
}

// quarantineDir moves a failed version directory under quarantine/ so it
// can never be served but stays available for forensics.
func (s *Store) quarantineDir(n int, cause error) error {
	if err := os.MkdirAll(s.quarantinePath(), 0o755); err != nil {
		return fmt.Errorf("registry: creating quarantine directory: %w", err)
	}
	dst := filepath.Join(s.quarantinePath(), fmt.Sprintf("v%d", n))
	for i := 2; ; i++ {
		if _, err := os.Stat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.quarantinePath(), fmt.Sprintf("v%d-%d", n, i))
	}
	if err := os.Rename(s.versionDir(n), dst); err != nil {
		return fmt.Errorf("registry: quarantining v%d: %w", n, err)
	}
	s.met.inc(s.met.quarantined)
	s.logf("registry: quarantined v%d → %s: %v", n, dst, cause)
	return nil
}

// Publish stores raw as a new version, unless it is already there. The
// idempotency ladder mirrors the distbuild shard upload:
//
//	invalid model bytes                       → ErrInvalidModel
//	byte-identical to an existing version     → that version, duplicate=true
//	same fingerprint, different bytes         → ErrConflict
//	otherwise                                 → next version, persisted
//
// Persistence order is model.bin → meta.bin → manifest, each atomic, so a
// crash leaves either nothing visible or a complete, adoptable version.
// The current pointer advances to the new version unless pinned.
//
// traceparent, when non-empty, is the producer's W3C span context; it is
// persisted with the version and echoed to pullers so downstream hot-swap
// spans join the producing build's trace. "" publishes untraced.
func (s *Store) Publish(raw []byte, fingerprint, source, traceparent string) (VersionInfo, bool, error) {
	if int64(len(raw)) > s.maxModel {
		return VersionInfo{}, false, fmt.Errorf("%w: %d bytes exceeds cap %d", ErrInvalidModel, len(raw), s.maxModel)
	}
	det, err := core.Load(bytes.NewReader(raw))
	if err != nil {
		return VersionInfo{}, false, fmt.Errorf("%w: %v", ErrInvalidModel, err)
	}
	sum := shaHex(raw)

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.man.Versions {
		if v.SHA256 == sum {
			s.met.inc(s.met.duplicates)
			s.logf("registry: publish of v%d acknowledged as duplicate (sha %s)", v.Version, sum[:12])
			return v, true, nil
		}
	}
	if fingerprint != "" {
		for _, v := range s.man.Versions {
			if v.Fingerprint == fingerprint {
				return VersionInfo{}, false, fmt.Errorf("%w: fingerprint %q already stored as v%d with sha %s",
					ErrConflict, fingerprint, v.Version, v.SHA256[:12])
			}
		}
	}

	n := 1
	if len(s.man.Versions) > 0 {
		n = s.man.Versions[len(s.man.Versions)-1].Version + 1
	}
	info := VersionInfo{
		Version:         n,
		SHA256:          sum,
		Bytes:           int64(len(raw)),
		Fingerprint:     fingerprint,
		Languages:       len(det.Languages()),
		Source:          source,
		PublishedUnixMs: s.now().UnixMilli(),
		Traceparent:     traceparent,
	}
	if err := os.MkdirAll(s.versionDir(n), 0o755); err != nil {
		return VersionInfo{}, false, fmt.Errorf("registry: %w", err)
	}
	if err := atomicio.WriteFile(s.modelPath(n), raw, 0o644); err != nil {
		return VersionInfo{}, false, fmt.Errorf("registry: persisting v%d model: %w", n, err)
	}
	if err := atomicio.WriteTo(s.metaPath(n), 0o644, func(w io.Writer) error {
		return encodeEnvelopeJSON(w, magicMeta, info)
	}); err != nil {
		return VersionInfo{}, false, fmt.Errorf("registry: persisting v%d meta: %w", n, err)
	}
	s.man.Versions = append(s.man.Versions, info)
	if !s.man.Pinned {
		s.man.Current = n
	}
	if err := s.writeManifestLocked(); err != nil {
		// The version directory is complete and will be adopted on the
		// next Open; surface the error so the producer retries and gets a
		// duplicate acknowledgement.
		return VersionInfo{}, false, err
	}
	s.met.inc(s.met.publishes)
	s.syncGaugesLocked()
	s.logf("registry: published v%d (%d bytes, %d languages, sha %s, source %q, current v%d)",
		n, info.Bytes, info.Languages, sum[:12], source, s.man.Current)
	return info, false, nil
}

// List snapshots the version history and the current pointer.
func (s *Store) List() (current int, pinned bool, versions []VersionInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	versions = make([]VersionInfo, len(s.man.Versions))
	copy(versions, s.man.Versions)
	return s.man.Current, s.man.Pinned, versions
}

// Current reports the pinned version's record, or ok=false before the
// first publish.
func (s *Store) Current() (VersionInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.findLocked(s.man.Current)
}

// Info reports one version's record without touching its model file —
// the cheap path behind conditional polls.
func (s *Store) Info(version int) (VersionInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.findLocked(version)
}

func (s *Store) findLocked(version int) (VersionInfo, bool) {
	for _, v := range s.man.Versions {
		if v.Version == version {
			return v, true
		}
	}
	return VersionInfo{}, false
}

// Get returns one version's record and model bytes, re-verifying the
// digest on the way out. A version whose bytes no longer hash to the
// recorded digest is quarantined and reported as ErrCorrupt — corruption
// is never served.
func (s *Store) Get(version int) (VersionInfo, []byte, error) {
	s.mu.Lock()
	info, ok := s.findLocked(version)
	s.mu.Unlock()
	if !ok {
		return VersionInfo{}, nil, fmt.Errorf("%w: v%d", ErrNotFound, version)
	}
	raw, err := os.ReadFile(s.modelPath(version))
	if err == nil && int64(len(raw)) == info.Bytes && shaHex(raw) == info.SHA256 {
		return info, raw, nil
	}
	if err == nil {
		err = errors.New("digest mismatch")
	}
	if qerr := s.dropAndQuarantine(version, err); qerr != nil {
		return VersionInfo{}, nil, qerr
	}
	return VersionInfo{}, nil, fmt.Errorf("%w: v%d: %v", ErrCorrupt, version, err)
}

// Pin moves the current pointer. version > 0 pins current there after
// re-verifying the stored digest (a corrupt target is quarantined and the
// pin refused); version == 0 unpins and snaps current to the newest
// version. Moving current to an older version reports rollback=true.
func (s *Store) Pin(version int) (VersionInfo, bool, error) {
	if version > 0 {
		// Digest verification outside the lock; Get quarantines on failure.
		if _, _, err := s.Get(version); err != nil {
			return VersionInfo{}, false, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.man.Current
	var info VersionInfo
	if version > 0 {
		var ok bool
		if info, ok = s.findLocked(version); !ok {
			// Quarantined between the Get above and here.
			return VersionInfo{}, false, fmt.Errorf("%w: v%d", ErrNotFound, version)
		}
		s.man.Current, s.man.Pinned = version, true
	} else {
		if len(s.man.Versions) == 0 {
			return VersionInfo{}, false, fmt.Errorf("%w: registry is empty", ErrNotFound)
		}
		info = s.man.Versions[len(s.man.Versions)-1]
		s.man.Current, s.man.Pinned = info.Version, false
	}
	if err := s.writeManifestLocked(); err != nil {
		s.man.Current = prev
		return VersionInfo{}, false, err
	}
	rollback := info.Version < prev
	s.met.inc(s.met.pins)
	if rollback {
		s.met.inc(s.met.rollbacks)
	}
	s.syncGaugesLocked()
	s.logf("registry: current pinned to v%d (was v%d, pinned=%t, rollback=%t)",
		info.Version, prev, s.man.Pinned, rollback)
	return info, rollback, nil
}

// dropAndQuarantine removes a corrupt version from the manifest and moves
// its directory aside, falling the current pointer back when it pointed at
// the casualty.
func (s *Store) dropAndQuarantine(version int, cause error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.findLocked(version); !ok {
		return nil // lost a race with another quarantine
	}
	kept := s.man.Versions[:0]
	for _, v := range s.man.Versions {
		if v.Version != version {
			kept = append(kept, v)
		}
	}
	s.man.Versions = kept
	if s.man.Current == version {
		s.man.Current, s.man.Pinned = 0, false
		if len(kept) > 0 {
			s.man.Current = kept[len(kept)-1].Version
		}
		s.logf("registry: current fell back to v%d after quarantining v%d", s.man.Current, version)
	}
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	if err := s.quarantineDir(version, cause); err != nil {
		return err
	}
	s.syncGaugesLocked()
	return nil
}

// writeManifestLocked durably rewrites manifest.bin; call with s.mu held.
func (s *Store) writeManifestLocked() error {
	if err := atomicio.WriteTo(s.manifestPath(), 0o644, func(w io.Writer) error {
		return encodeEnvelopeJSON(w, magicManifest, s.man)
	}); err != nil {
		return fmt.Errorf("registry: writing manifest: %w", err)
	}
	return nil
}

func (s *Store) syncGaugesLocked() {
	s.met.setGauge(s.met.versions, float64(len(s.man.Versions)))
	s.met.setGauge(s.met.currentVersion, float64(s.man.Current))
}

// registerGauges exposes live store state on the registry's /metrics.
func (s *Store) registerGauges(r *observe.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("autodetect_registry_pinned",
		"1 when the current pointer is pinned (publishes stop advancing it).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.man.Pinned {
				return 1
			}
			return 0
		})
}

func parseVersionDir(name string) (int, bool) {
	if !strings.HasPrefix(name, "v") {
		return 0, false
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

func versionPresent(versions []VersionInfo, n int) bool {
	for _, v := range versions {
		if v.Version == n {
			return true
		}
	}
	return false
}

func manifestEqual(a, b manifestState) bool {
	if a.Current != b.Current || a.Pinned != b.Pinned || len(a.Versions) != len(b.Versions) {
		return false
	}
	for i := range a.Versions {
		if a.Versions[i] != b.Versions[i] {
			return false
		}
	}
	return true
}

func shaHex(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
