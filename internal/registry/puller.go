package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/observe"
	"repro/internal/resilience"
	"repro/internal/retry"
)

// DefaultPoll is the fleet polling cadence when PullerConfig.Poll is zero.
const DefaultPoll = 5 * time.Second

// errNoModel marks a poll against a registry that has nothing published
// yet — not a failure, just "check back later".
var errNoModel = errors.New("registry: no model published yet")

// PullerConfig configures NewPuller.
type PullerConfig struct {
	// URL is the registry base URL, e.g. "http://registry:8080". Required.
	URL string
	// Poll is the conditional-poll cadence (default DefaultPoll).
	Poll time.Duration
	// HTTP issues the registry calls (default http.DefaultClient). Tests
	// inject fault-injecting transports here.
	HTTP *http.Client
	// Retry shapes each poll round. Zero-value fields take the retry
	// package defaults; AttemptTimeout additionally defaults to a minute
	// so one hung download is abandoned and restarted.
	Retry retry.Policy
	// Breaker, when set, guards the registry dependency: every attempt asks
	// Allow first, and an open breaker aborts the whole poll round with one
	// cheap ErrBreakerOpen instead of a storm of doomed requests. Outcomes
	// feed back in (304/200/404 count as registry-healthy).
	Breaker *resilience.Breaker
	// Budget, when set, bounds retry amplification: each retry of a failed
	// attempt spends a token, each success deposits a fraction of one.
	// Folded into Retry.Budget unless that is already set.
	Budget retry.Budget
	// MaxModelBytes caps accepted downloads (default DefaultMaxModelBytes).
	MaxModelBytes int64
	// Apply receives each newly pulled version's digest-verified bytes.
	// Returning an error keeps the puller on its old version; the same
	// version is retried on the next poll. Required.
	Apply func(info VersionInfo, raw []byte) error
	// Logf, when set, receives one line per puller event (nil discards).
	Logf func(format string, args ...any)
	// Metrics, when set, receives the replica-side
	// autodetect_registry_client_* families.
	Metrics *observe.Registry
	// Tracer, when set, records one "model_hot_swap" span per applied
	// version in the replica's flight recorder. When the registry echoes
	// the traceparent persisted at publish time, the span joins that trace
	// — the hot-swap becomes a descendant of the build that produced the
	// model, observable end to end via /debug/traces.
	Tracer *observe.Tracer
}

// Puller keeps one replica converged on the registry's pinned version: it
// conditionally polls GET /registry/v1/models/current (unchanged polls are
// 304s with no body), downloads on change under the retry policy, verifies
// the SHA-256 digest against the response header, and hands the bytes to
// Apply. Registry restarts and 503s are ridden out: a failed round is
// logged and the next tick tries again, forever.
type Puller struct {
	cfg    PullerConfig
	client *http.Client
	logf   func(format string, args ...any)
	met    *pullerMetrics

	// mu serializes poll rounds: the Run loop and a forced PullNow from
	// the admin-reload path may race, and Apply must never run twice
	// concurrently. etag is the validator of the last applied version;
	// version mirrors it for logging.
	mu      sync.Mutex
	etag    string
	version int
}

// NewPuller validates cfg and returns a puller; call Run to start polling.
func NewPuller(cfg PullerConfig) (*Puller, error) {
	if cfg.URL == "" {
		return nil, errors.New("registry: PullerConfig.URL is required")
	}
	if cfg.Apply == nil {
		return nil, errors.New("registry: PullerConfig.Apply is required")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.MaxModelBytes <= 0 {
		cfg.MaxModelBytes = DefaultMaxModelBytes
	}
	if cfg.Retry.AttemptTimeout == 0 {
		cfg.Retry.AttemptTimeout = time.Minute
	}
	if cfg.Retry.Budget == nil {
		cfg.Retry.Budget = cfg.Budget
	}
	p := &Puller{cfg: cfg, client: cfg.HTTP, logf: cfg.Logf, met: newPullerMetrics(cfg.Metrics)}
	if p.client == nil {
		p.client = http.DefaultClient
	}
	if p.logf == nil {
		p.logf = func(string, ...any) {}
	}
	return p, nil
}

// Version reports the last applied registry version (0 before the first
// successful pull).
func (p *Puller) Version() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

// Run polls until ctx ends. Every failure is absorbed: the registry being
// down, restarting, or serving 503s delays convergence, never kills the
// replica. Returns ctx.Err().
func (p *Puller) Run(ctx context.Context) error {
	tick := time.NewTicker(p.cfg.Poll)
	defer tick.Stop()
	for {
		if _, _, err := p.PullNow(ctx); err != nil && ctx.Err() == nil {
			p.met.inc(p.met.errors)
			p.logf("registry puller: poll failed, retrying next tick: %v", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// PullNow performs one poll round immediately (also the force-pull behind
// /v1/admin/reload when the daemon serves from a registry). It reports the
// applied version and changed=true when a new version was downloaded and
// applied; changed=false means the registry confirmed the current version
// is still what this replica serves (or has nothing published yet).
func (p *Puller) PullNow(ctx context.Context) (VersionInfo, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var info VersionInfo
	var raw []byte
	changed := false
	start := time.Now()
	attempt := func(actx context.Context) error {
		p.met.inc(p.met.polls)
		req, err := http.NewRequestWithContext(actx, http.MethodGet,
			p.cfg.URL+PathModels+"/current", nil)
		if err != nil {
			return err
		}
		if p.etag != "" {
			req.Header.Set("If-None-Match", p.etag)
		}
		resilience.AttachDeadline(actx, req.Header, 0)
		resp, err := p.client.Do(req)
		if err != nil {
			// Transport-level failures (resets, refused connections during a
			// registry restart, injected faults) are transient: polling is
			// idempotent, re-asking is always safe.
			return retry.Transient(err)
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotModified:
			io.Copy(io.Discard, resp.Body)
			p.met.inc(p.met.notModified)
			changed = false
			return nil
		case resp.StatusCode == http.StatusOK:
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, p.cfg.MaxModelBytes+1))
			if rerr != nil {
				return retry.Transient(fmt.Errorf("registry: download interrupted: %w", rerr))
			}
			if int64(len(body)) > p.cfg.MaxModelBytes {
				return fmt.Errorf("registry: model exceeds %d-byte cap", p.cfg.MaxModelBytes)
			}
			want := resp.Header.Get(HeaderSHA256)
			if want == "" {
				return errors.New("registry: response missing " + HeaderSHA256)
			}
			if got := shaHex(body); got != want {
				// A torn body that slipped past Content-Length, or a proxy
				// mangled the payload: re-download.
				return retry.Transient(fmt.Errorf(
					"registry: downloaded bytes hash to %s, registry says %s", got[:12], want[:12]))
			}
			v, verr := strconv.Atoi(resp.Header.Get(HeaderVersion))
			if verr != nil || v < 1 {
				return fmt.Errorf("registry: bad %s header %q", HeaderVersion, resp.Header.Get(HeaderVersion))
			}
			published, _ := strconv.ParseInt(resp.Header.Get(HeaderPublished), 10, 64)
			info = VersionInfo{
				Version:         v,
				SHA256:          want,
				Bytes:           int64(len(body)),
				Source:          resp.Header.Get(HeaderSource),
				PublishedUnixMs: published,
			}
			if sc, ok := observe.ParseTraceparent(resp.Header.Get(HeaderTraceparent)); ok {
				info.Traceparent = sc.Traceparent()
			}
			raw = body
			changed = true
			return nil
		case resp.StatusCode == http.StatusNotFound:
			io.Copy(io.Discard, resp.Body)
			return errNoModel
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			// An overloaded registry's Retry-After hint becomes the backoff
			// floor: never hammer a server that asked for breathing room.
			return resilience.RetryAfterFloor(
				retry.Transient(errors.New(httpMessage(resp))), resp.Header)
		default:
			return errors.New(httpMessage(resp))
		}
	}
	err := p.cfg.Retry.DoCtx(ctx, func(actx context.Context) error {
		if b := p.cfg.Breaker; b != nil {
			if aerr := b.Allow(); aerr != nil {
				// ErrBreakerOpen is not transient: the whole round collapses
				// into this one rejection, costing the registry nothing.
				return aerr
			}
			err := attempt(actx)
			rerr := err
			if errors.Is(rerr, errNoModel) {
				rerr = nil // the registry answered; empty is healthy
			}
			b.Record(rerr)
			return err
		}
		return attempt(actx)
	})
	if errors.Is(err, errNoModel) {
		// Nothing published yet: quietly poll again next tick.
		return VersionInfo{}, false, nil
	}
	if err != nil {
		return VersionInfo{}, false, err
	}
	if !changed {
		return VersionInfo{Version: p.version}, false, nil
	}
	if err := p.apply(ctx, info, raw); err != nil {
		return VersionInfo{}, false, fmt.Errorf("registry: applying v%d: %w", info.Version, err)
	}
	p.etag = `"` + info.SHA256 + `"`
	prev := p.version
	p.version = info.Version
	p.met.inc(p.met.pulls)
	p.met.observePull(time.Since(start).Seconds())
	p.logf("registry puller: applied v%d (%d bytes, sha %s, was v%d)",
		info.Version, info.Bytes, info.SHA256[:12], prev)
	return info, true, nil
}

// apply hands a downloaded version to cfg.Apply, wrapped in a
// "model_hot_swap" recorder span when a tracer is configured. The span
// joins the version's persisted publish trace (echoed by the registry in
// HeaderTraceparent) as a remote parent, so the replica's swap shows up on
// the producing build's timeline.
func (p *Puller) apply(ctx context.Context, info VersionInfo, raw []byte) error {
	if p.cfg.Tracer == nil {
		return p.cfg.Apply(info, raw)
	}
	ctx = observe.ContextWithTracer(ctx, p.cfg.Tracer)
	if sc, ok := observe.ParseTraceparent(info.Traceparent); ok {
		ctx = observe.ContextWithRemoteParent(ctx, sc)
	}
	sctx, end := observe.RecorderSpan(ctx, "model_hot_swap")
	defer end()
	observe.SetSpanAttr(sctx, "version", strconv.Itoa(info.Version))
	observe.SetSpanAttr(sctx, "sha256", info.SHA256[:12])
	if err := p.cfg.Apply(info, raw); err != nil {
		observe.SetSpanError(sctx, err.Error())
		return err
	}
	return nil
}

// PublishResult is what Publish reports back to the producer.
type PublishResult struct {
	Status  string `json:"status"` // "accepted" or "duplicate"
	Version int    `json:"version"`
	SHA256  string `json:"sha256"`
	Bytes   int64  `json:"bytes"`
	Current int    `json:"current"`
}

// PublishOptions shapes PublishModel.
type PublishOptions struct {
	// Client issues the upload (default http.DefaultClient).
	Client *http.Client
	// Retry shapes the upload attempts; AttemptTimeout defaults to a
	// minute.
	Retry retry.Policy
	// Breaker, when set, guards the registry: an open breaker fails the
	// publish fast with ErrBreakerOpen instead of burning attempts against
	// a dead upstream (the coordinator's finalize step keeps the artifacts
	// and can re-publish once it closes).
	Breaker *resilience.Breaker
	// Budget, when set, bounds retry amplification; folded into
	// Retry.Budget unless that is already set.
	Budget retry.Budget
}

// Publish uploads model bytes to a registry under a retry policy — kept as
// a thin wrapper over PublishModel for existing callers.
func Publish(ctx context.Context, client *http.Client, baseURL string, raw []byte, fingerprint, source string, pol retry.Policy) (PublishResult, error) {
	return PublishModel(ctx, baseURL, raw, fingerprint, source, PublishOptions{Client: client, Retry: pol})
}

// PublishModel uploads model bytes to a registry — the producer-side
// client used by the distbuild coordinator's finalize step and
// `autodetect train`. Transport failures, 429s, and 5xx answers are
// retried with any Retry-After hint honored as a backoff floor (publish is
// idempotent: a retry of a landed upload is acknowledged as a duplicate);
// a 409 conflict is permanent.
func PublishModel(ctx context.Context, baseURL string, raw []byte, fingerprint, source string, opts PublishOptions) (PublishResult, error) {
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	pol := opts.Retry
	if pol.AttemptTimeout == 0 {
		pol.AttemptTimeout = time.Minute
	}
	if pol.Budget == nil {
		pol.Budget = opts.Budget
	}
	url := baseURL + PathModels + "?fingerprint=" + urlQueryEscape(fingerprint) + "&source=" + urlQueryEscape(source)
	var res PublishResult
	attempt := func(actx context.Context) error {
		req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		observe.Inject(actx, req.Header)
		resilience.AttachDeadline(actx, req.Header, 0)
		resp, err := client.Do(req)
		if err != nil {
			return retry.Transient(err)
		}
		defer resp.Body.Close()
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		switch {
		case resp.StatusCode == http.StatusOK:
			if err := json.Unmarshal(body, &res); err != nil {
				if rerr != nil {
					err = rerr
				}
				// Torn response to a landed upload: re-ask, the registry
				// answers "duplicate".
				return retry.Transient(fmt.Errorf("registry: bad publish response: %w", err))
			}
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			return resilience.RetryAfterFloor(
				retry.Transient(errors.New(httpMessage(resp, body...))), resp.Header)
		default:
			return errors.New(httpMessage(resp, body...))
		}
	}
	err := pol.DoCtx(ctx, func(actx context.Context) error {
		if b := opts.Breaker; b != nil {
			if aerr := b.Allow(); aerr != nil {
				return aerr
			}
			err := attempt(actx)
			b.Record(err)
			return err
		}
		return attempt(actx)
	})
	return res, err
}

// httpMessage renders an error response, favoring the JSON error
// envelope's message when present. The body is read here unless the
// caller already consumed it and passes the bytes along.
func httpMessage(resp *http.Response, body ...byte) string {
	raw := body
	if raw == nil {
		raw, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	}
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		return fmt.Sprintf("registry answered %d: %s", resp.StatusCode, eb.Error)
	}
	return fmt.Sprintf("registry answered %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
}

// urlQueryEscape is the tiny subset of url.QueryEscape needed for
// fingerprints (hex) and source names, kept dependency-light.
func urlQueryEscape(s string) string {
	const hexDigits = "0123456789ABCDEF"
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == '~' {
			b.WriteByte(c)
			continue
		}
		b.WriteByte('%')
		b.WriteByte(hexDigits[c>>4])
		b.WriteByte(hexDigits[c&0xf])
	}
	return b.String()
}
