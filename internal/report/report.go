// Package report renders error-detection results as a standalone HTML
// audit report — the "surface findings to a spreadsheet user" half of the
// paper's product framing (Figures 1/2 show exactly such highlighted
// cells).
package report

import (
	"html/template"
	"io"
	"time"
)

// Cell is one rendered table cell.
type Cell struct {
	// Value is the cell text.
	Value string
	// Finding is non-nil when the cell is a suspected error.
	Finding *Finding
}

// Finding carries the verdict shown in the report.
type Finding struct {
	// Partner is the value the cell conflicts with.
	Partner string
	// Confidence is the estimated precision.
	Confidence float64
	// Kind is "pattern" or "semantic".
	Kind string
	// Suggestion, when non-empty, is the proposed repair.
	Suggestion string
}

// Column is one audited column.
type Column struct {
	// Name is the column header.
	Name string
	// Cells are the column's cells in row order.
	Cells []Cell
	// Findings counts flagged cells.
	Findings int
}

// Report is a full audit.
type Report struct {
	// Title heads the report.
	Title string
	// Generated is the report timestamp.
	Generated time.Time
	// ModelSummary describes the detector used.
	ModelSummary string
	// Columns are the audited columns (usually only those with findings).
	Columns []Column
	// TotalColumns and TotalFindings summarize the run.
	TotalColumns, TotalFindings int
}

// AddColumn appends a column built from raw values and a finding lookup
// keyed by row index.
func (r *Report) AddColumn(name string, values []string, findings map[int]Finding) {
	col := Column{Name: name}
	for i, v := range values {
		c := Cell{Value: v}
		if f, ok := findings[i]; ok {
			ff := f
			c.Finding = &ff
			col.Findings++
		}
		col.Cells = append(col.Cells, c)
	}
	r.TotalColumns++
	r.TotalFindings += col.Findings
	if col.Findings > 0 {
		r.Columns = append(r.Columns, col)
	}
}

var tmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct": func(x float64) float64 { return x * 100 },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; }
.summary { color: #555; margin-bottom: 1.5rem; }
.column { margin-bottom: 2rem; }
.column h2 { font-size: 1.05rem; border-bottom: 1px solid #ddd; padding-bottom: .25rem; }
table { border-collapse: collapse; }
td { border: 1px solid #e2e2e2; padding: .25rem .6rem; font-family: ui-monospace, monospace; font-size: .85rem; }
td.bad { background: #fde8e8; border: 2px solid #e02424; }
.why { color: #9b1c1c; font-size: .75rem; font-family: system-ui, sans-serif; }
.conf { color: #555; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<div class="summary">
generated {{.Generated.Format "2006-01-02 15:04:05"}} · model: {{.ModelSummary}} ·
{{.TotalFindings}} finding(s) across {{.TotalColumns}} column(s)
</div>
{{range .Columns}}
<div class="column">
<h2>{{.Name}} — {{.Findings}} finding(s)</h2>
<table>
{{range .Cells}}
<tr>
{{if .Finding}}<td class="bad">{{.Value}}
<div class="why">conflicts with “{{.Finding.Partner}}” <span class="conf">({{.Finding.Kind}}, {{printf "%.0f%%" (pct .Finding.Confidence)}})</span>{{if .Finding.Suggestion}} — suggest “{{.Finding.Suggestion}}”{{end}}</div>
</td>{{else}}<td>{{.Value}}</td>{{end}}
</tr>
{{end}}
</table>
</div>
{{end}}
</body>
</html>
`))

// Render writes the report as standalone HTML.
func (r *Report) Render(w io.Writer) error {
	if r.Generated.IsZero() {
		r.Generated = time.Now()
	}
	return tmpl.Execute(w, r)
}
