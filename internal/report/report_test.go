package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func buildReport() *Report {
	r := &Report{Title: "Audit of demo.csv", ModelSummary: "4 languages, 1.2MB"}
	r.AddColumn("dates", []string{"2011-01-01", "2011/06/20", "2013-11-30"}, map[int]Finding{
		1: {Partner: "2011-01-01", Confidence: 0.993, Kind: "pattern", Suggestion: "2011-06-20"},
	})
	r.AddColumn("clean", []string{"1", "2", "3"}, nil)
	r.AddColumn("states", []string{"Washington", "Seattle", "Texas"}, map[int]Finding{
		1: {Partner: "Washington", Confidence: 0.42, Kind: "semantic"},
	})
	return r
}

func TestAddColumnAccounting(t *testing.T) {
	r := buildReport()
	if r.TotalColumns != 3 {
		t.Errorf("TotalColumns = %d", r.TotalColumns)
	}
	if r.TotalFindings != 2 {
		t.Errorf("TotalFindings = %d", r.TotalFindings)
	}
	// Clean columns are excluded from rendering.
	if len(r.Columns) != 2 {
		t.Errorf("rendered columns = %d", len(r.Columns))
	}
}

func TestRenderHTML(t *testing.T) {
	r := buildReport()
	r.Generated = time.Date(2018, 6, 10, 12, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Audit of demo.csv",
		"2011/06/20",
		`class="bad"`,
		"conflicts with",
		"pattern, 99%",
		"semantic, 42%",
		"2 finding(s) across 3 column(s)",
		"2018-06-10",
		"suggest “2011-06-20”",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("rendered HTML missing %q", want)
		}
	}
	// Clean column must not appear.
	if strings.Contains(html, "<h2>clean") {
		t.Error("clean column rendered")
	}
}

func TestRenderEscapesHTML(t *testing.T) {
	r := &Report{Title: "<script>alert(1)</script>"}
	r.AddColumn("c", []string{"<b>bold</b>", "x", "y"}, map[int]Finding{
		0: {Partner: "<i>p</i>", Confidence: 1, Kind: "pattern"},
	})
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	if strings.Contains(html, "<script>alert") || strings.Contains(html, "<b>bold</b>") {
		t.Error("HTML not escaped")
	}
	if !strings.Contains(html, "&lt;b&gt;bold&lt;/b&gt;") {
		t.Error("escaped cell value missing")
	}
	// Render stamps a timestamp when unset.
	if r.Generated.IsZero() {
		t.Error("Generated not stamped")
	}
}
