package baselines

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/corpus"
)

// mixedDateColumn has one slash-format date among dot-format dates.
var mixedDateColumn = []string{
	"2011.01.02", "2011.02.14", "2011.03.08", "2011/04/01", "2011.05.30",
	"2011.06.11", "2011.07.19", "2011.08.23",
}

// placeholderColumn has a junk placeholder among scores.
var placeholderColumn = []string{"3-2", "1-0", "4-4", "-", "2-1", "0-0", "5-3", "2-2"}

// cleanIntColumn is uniform plain integers.
var cleanIntColumn = []string{"12", "7", "44", "130", "8", "92", "51", "23"}

func topValue(ps []Prediction) string {
	if len(ps) == 0 {
		return ""
	}
	return ps[0].Value
}

func TestEveryBaselineImplementsContract(t *testing.T) {
	for _, det := range AllPlusUnion() {
		if det.Name() == "" {
			t.Error("empty detector name")
		}
		// Degenerate inputs must not panic and must be quiet.
		for _, col := range [][]string{nil, {"x"}, {"a", "a", "a"}} {
			if got := det.Detect(col); len(got) > 0 && det.Name() != "LOF" {
				t.Errorf("%s: predictions on degenerate column %v", det.Name(), col)
			}
		}
		// Confidences must be in [0,1] and ranked descending.
		ps := det.Detect(mixedDateColumn)
		for i, p := range ps {
			if p.Confidence < 0 || p.Confidence > 1 {
				t.Errorf("%s: confidence %v out of range", det.Name(), p.Confidence)
			}
			if i > 0 && ps[i].Confidence > ps[i-1].Confidence {
				t.Errorf("%s: predictions not ranked", det.Name())
			}
			if p.Index < 0 || p.Index >= len(mixedDateColumn) {
				t.Errorf("%s: index %d out of range", det.Name(), p.Index)
			}
			if mixedDateColumn[p.Index] != p.Value {
				t.Errorf("%s: index/value mismatch", det.Name())
			}
		}
	}
}

func TestFRegexFlagsTypeViolations(t *testing.T) {
	f := &FRegex{}
	// Dominant date-ymd type with one violation.
	if got := topValue(f.Detect(mixedDateColumn)); got != "2011/04/01" {
		// 2011/04/01 actually also matches date-ymd; F-Regex cannot see
		// separator-level inconsistency. This is exactly the paper's
		// criticism — accept either outcome but require no false flags on
		// the dominant format.
		if got != "" {
			t.Errorf("F-Regex flagged %q", got)
		}
	}
	// Placeholder among scores: scores don't match a known type, silent.
	// Emails with one bad value: flagged.
	col := []string{"a@b.com", "c@d.org", "e@f.net", "not-an-email", "g@h.io"}
	if got := topValue(f.Detect(col)); got != "not-an-email" {
		t.Errorf("F-Regex top = %q, want not-an-email", got)
	}
	if ps := f.Detect(cleanIntColumn); len(ps) != 0 {
		t.Errorf("F-Regex flagged clean integers: %v", ps)
	}
}

func TestPWheelFlagsStructuralMinority(t *testing.T) {
	p := &PWheel{}
	if got := topValue(p.Detect(mixedDateColumn)); got != "2011/04/01" {
		t.Errorf("PWheel top = %q, want the slash date", got)
	}
	if got := topValue(p.Detect(placeholderColumn)); got != "-" {
		t.Errorf("PWheel top = %q, want the placeholder", got)
	}
}

// PWheel's documented failure mode (Section 1): it flags the globally
// compatible "1,000" among plain integers, and misses a 50-50 format mix.
func TestPWheelLocalFailureModes(t *testing.T) {
	p := &PWheel{}
	col1 := make([]string, 0, 40)
	for i := 0; i < 39; i++ {
		col1 = append(col1, strconv.Itoa(i*25))
	}
	col1 = append(col1, "1,000")
	if got := topValue(p.Detect(col1)); got != "1,000" {
		t.Errorf("PWheel should (wrongly) flag the comma integer, got %q", got)
	}
	var col3 []string
	for d := 1; d <= 6; d++ {
		col3 = append(col3, "2011-01-0"+strconv.Itoa(d))
		col3 = append(col3, "2011/01/0"+strconv.Itoa(d))
	}
	if ps := p.Detect(col3); len(ps) != 0 {
		t.Errorf("PWheel should miss the balanced mix, flagged %v", ps)
	}
}

func TestDBoostFlagsNumericOutliers(t *testing.T) {
	d := &DBoost{}
	col := []string{"10", "12", "11", "9", "13", "10", "11", "99999999"}
	if got := topValue(d.Detect(col)); got != "99999999" {
		t.Errorf("dBoost top = %q, want the magnitude outlier", got)
	}
	if got := topValue(d.Detect(placeholderColumn)); got != "-" {
		t.Errorf("dBoost top = %q, want the placeholder", got)
	}
}

func TestLinearVariants(t *testing.T) {
	lp := &LinearP{}
	if got := topValue(lp.Detect(placeholderColumn)); got != "-" {
		t.Errorf("LinearP top = %q, want the placeholder", got)
	}
	if got := topValue(lp.Detect(mixedDateColumn)); got != "2011/04/01" {
		t.Errorf("LinearP top = %q, want the slash date", got)
	}
	// Linear without generalization is noisier; it should at least rank the
	// placeholder above the median score.
	l := &Linear{}
	ps := l.Detect(placeholderColumn)
	found := false
	for i, p := range ps {
		if p.Value == "-" && i < len(ps) {
			found = true
		}
	}
	if !found {
		t.Error("Linear did not rank the placeholder at all")
	}
}

func TestCDMAndLSA(t *testing.T) {
	for _, det := range []Detector{&CDM{}, &LSA{}} {
		if got := topValue(det.Detect(placeholderColumn)); got != "-" {
			t.Errorf("%s top = %q, want the placeholder", det.Name(), got)
		}
	}
}

func TestDistanceOutlierMethods(t *testing.T) {
	col := []string{"3:45", "4:02", "2:59", "3:11", "245", "4:40", "5:01"}
	for _, det := range []Detector{&SVDD{}, &DBOD{}, &LOF{}} {
		if got := topValue(det.Detect(col)); got != "245" {
			t.Errorf("%s top = %q, want the bare number among song lengths", det.Name(), got)
		}
	}
}

func TestUnionPoolsMembers(t *testing.T) {
	u := &Union{Members: []Detector{&PWheel{}, &DBoost{}}}
	ps := u.Detect(placeholderColumn)
	if topValue(ps) != "-" {
		t.Errorf("Union top = %q", topValue(ps))
	}
	// Union keeps at most one prediction per value.
	seen := map[int]bool{}
	for _, p := range ps {
		if seen[p.Index] {
			t.Error("duplicate index in union output")
		}
		seen[p.Index] = true
	}
}

func TestBaselinesOnGeneratedColumns(t *testing.T) {
	// Smoke test across many generated dirty columns: every method must
	// run without panicking and produce bounded confidences.
	r := rand.New(rand.NewSource(5))
	dets := AllPlusUnion()
	for trial := 0; trial < 40; trial++ {
		dom := corpus.Domains()[r.Intn(len(corpus.Domains()))]
		col, err := corpus.GenerateColumn(r, dom, 15)
		if err != nil {
			t.Fatal(err)
		}
		col.Dirty = []int{}
		corpus.InjectError(r, col)
		for _, det := range dets {
			for _, p := range det.Detect(col.Values) {
				if p.Confidence < 0 || p.Confidence > 1 {
					t.Fatalf("%s: confidence %v out of range on %s", det.Name(), p.Confidence, dom)
				}
			}
		}
	}
}

func BenchmarkPWheel(b *testing.B) {
	p := &PWheel{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Detect(mixedDateColumn)
	}
}

func BenchmarkLOF(b *testing.B) {
	l := &LOF{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Detect(mixedDateColumn)
	}
}
