package baselines

import "testing"

// TestBuiltinTypeExamples: every predefined type must accept a canonical
// example and reject a canonical counterexample.
func TestBuiltinTypeExamples(t *testing.T) {
	examples := map[string][2]string{
		"integer":    {"1,234", "12.5"},
		"decimal":    {"1,234.56", "abc"},
		"percentage": {"12.5%", "12.5"},
		"currency":   {"$1,234.56", "1234USD%"},
		"date-ymd":   {"2011-01-02", "01-02-2011"},
		"date-dmy":   {"01/02/2011", "2011/01/02"},
		"date-text":  {"January 2, 2011", "2011-01-02"},
		"time":       {"13:45:01", "13h45"},
		"email":      {"a@b.com", "a b@c.com"},
		"url":        {"https://x.io/y", "x.io"},
		"ip-address": {"10.0.0.1", "10.0.0"},
		"phone":      {"(425) 555-0143", "5550143"},
		"zip":        {"98052-1234", "9805"},
		"boolean":    {"Yes", "maybe"},
	}
	for _, bt := range builtinTypes {
		ex, ok := examples[bt.name]
		if !ok {
			t.Errorf("no example for builtin type %q", bt.name)
			continue
		}
		if !bt.re.MatchString(ex[0]) {
			t.Errorf("type %q rejects its example %q", bt.name, ex[0])
		}
		if bt.re.MatchString(ex[1]) {
			t.Errorf("type %q accepts its counterexample %q", bt.name, ex[1])
		}
	}
}

func TestDetectorNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range AllPlusUnion() {
		if seen[d.Name()] {
			t.Errorf("duplicate detector name %q", d.Name())
		}
		seen[d.Name()] = true
	}
	if len(seen) != 11 {
		t.Errorf("expected 11 methods, got %d", len(seen))
	}
}

func TestFRegexNoTypeSilent(t *testing.T) {
	// Scores match no builtin type: F-Regex must stay silent even with an
	// obvious placeholder (the paper's criticism of fixed-type systems).
	f := &FRegex{}
	if got := f.Detect([]string{"3-2", "1-0", "4-4", "-", "2-1", "0-0", "5-3", "2-2"}); len(got) != 0 {
		t.Errorf("F-Regex flagged values outside its type system: %v", got)
	}
}

func TestFRegexMajorityThreshold(t *testing.T) {
	// Below the majority threshold, no type is assigned.
	f := &FRegex{MajorityThreshold: 0.9}
	col := []string{"a@b.com", "c@d.org", "nope", "also-nope", "x@y.net"}
	if got := f.Detect(col); len(got) != 0 {
		t.Errorf("60%% conformance should not pass a 0.9 threshold: %v", got)
	}
	f = &FRegex{MajorityThreshold: 0.5}
	if got := f.Detect(col); len(got) != 2 {
		t.Errorf("expected both non-emails flagged, got %v", got)
	}
}
