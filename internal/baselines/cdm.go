package baselines

import (
	"bytes"
	"compress/flate"
	"strings"

	"repro/internal/pattern"
)

// CDM implements the compression-based dissimilarity measure of Keogh,
// Lonardi & Ratanamahatana (KDD 2004): CDM(x, y) = C(xy) / (C(x) + C(y)),
// where C is the compressed size under an off-the-shelf compressor. Values
// are first generalized into class patterns (as the paper's adaptation
// describes); each value is scored by the CDM distance between its pattern
// and the concatenation of the other values' patterns.
type CDM struct{}

// Name implements Detector.
func (*CDM) Name() string { return "CDM" }

// compressedSize returns the flate-compressed byte size of s.
func compressedSize(s string) int {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		return len(s)
	}
	if _, err := w.Write([]byte(s)); err != nil {
		return len(s)
	}
	if err := w.Close(); err != nil {
		return len(s)
	}
	return buf.Len()
}

// Detect implements Detector.
func (*CDM) Detect(values []string) []Prediction {
	dvs := distinct(values)
	if len(dvs) < 3 {
		return nil
	}
	g := pattern.Crude()
	pats := make([]string, len(dvs))
	for i, dv := range dvs {
		pats[i] = g.Generalize(dv.value)
	}
	var out []Prediction
	for i, dv := range dvs {
		var rest strings.Builder
		for j, p := range pats {
			if j == i {
				continue
			}
			rest.WriteString(p)
			rest.WriteByte('\n')
		}
		// Conditional compression cost C(x·y) − C(x): how many new bytes
		// the value's pattern adds given the rest of the column. A pattern
		// already present compresses to almost nothing; a structurally
		// novel one pays for itself. (The raw CDM ratio C(xy)/(C(x)+C(y))
		// is dominated by flate's fixed per-stream overhead at these tiny
		// sizes, so the conditional form is used for ranking.)
		cx := compressedSize(rest.String())
		cxy := compressedSize(rest.String() + pats[i] + "\n")
		added := cxy - cx
		if added <= 0 {
			continue
		}
		score := float64(added) / float64(len(pats[i])+4)
		rarity := 1 - float64(dv.count)/float64(len(values))
		out = append(out, Prediction{Index: dv.first, Value: dv.value, Confidence: clamp01(score * rarity)})
	}
	return rank(out)
}
