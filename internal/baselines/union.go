package baselines

import (
	"sort"

	"repro/internal/core"
)

// Union pools the predictions of several detectors, keeping each value's
// maximum confidence across methods — the ensemble the paper evaluates as
// "Union" in Figure 4(a).
type Union struct {
	// Members are the pooled detectors.
	Members []Detector
}

// Name implements Detector.
func (*Union) Name() string { return "Union" }

// Detect implements Detector.
func (u *Union) Detect(values []string) []Prediction {
	best := map[int]Prediction{}
	for _, m := range u.Members {
		for _, p := range m.Detect(values) {
			if cur, ok := best[p.Index]; !ok || p.Confidence > cur.Confidence {
				best[p.Index] = p
			}
		}
	}
	out := make([]Prediction, 0, len(best))
	for _, p := range best {
		out = append(out, p)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// All returns the full baseline roster in the order of the paper's
// Figure 4(a), excluding Union (compose one with AllPlusUnion if needed).
func All() []Detector {
	return []Detector{
		&FRegex{},
		&PWheel{},
		&DBoost{},
		&Linear{},
		&LinearP{},
		&CDM{},
		&LSA{},
		&SVDD{},
		&DBOD{},
		&LOF{},
	}
}

// AllPlusUnion returns the baselines plus a Union over all of them.
func AllPlusUnion() []Detector {
	ds := All()
	return append(ds, &Union{Members: All()})
}

// AutoDetect adapts a trained core.Detector to the baseline Detector
// interface so the evaluation harness can rank it alongside the baselines.
type AutoDetect struct {
	// Det is the trained detector.
	Det *core.Detector
	// DisplayName overrides the default "Auto-Detect" label (used by the
	// aggregation-ablation experiment).
	DisplayName string
}

// Name implements Detector.
func (a *AutoDetect) Name() string {
	if a.DisplayName != "" {
		return a.DisplayName
	}
	return "Auto-Detect"
}

// Detect implements Detector.
func (a *AutoDetect) Detect(values []string) []Prediction {
	findings := a.Det.DetectColumn(values)
	out := make([]Prediction, 0, len(findings))
	for _, f := range findings {
		out = append(out, Prediction{Index: f.Index, Value: f.Value, Confidence: f.Confidence})
	}
	return out
}
