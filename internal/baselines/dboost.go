package baselines

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pattern"
)

// DBoost implements the dBoost baseline (Mariet et al.): every value is
// expanded into derived fields using type-specific expansion rules (string
// length, character-class counts, parsed numeric magnitude, and — when the
// value parses as a number in a plausible range — date-like components).
// Each field is modeled by simple per-column statistics (Gaussian for
// numeric fields, frequency histograms for discrete ones); a value whose
// deviating-field fraction exceeds θ is an outlier. Defaults follow the
// paper's reported setting θ = 0.8, ε = 0.05.
type DBoost struct {
	// Theta is the fraction of fields that must deviate (default 0.8).
	Theta float64
	// Epsilon is the rarity threshold for discrete fields (default 0.05).
	Epsilon float64
}

// Name implements Detector.
func (*DBoost) Name() string { return "dBoost" }

// expansion is the derived-field tuple of one value.
type expansion struct {
	numeric    []float64 // numeric fields (NaN = not applicable)
	discrete   []string  // discrete fields
	numNumeric int
}

const dboostNumericFields = 6 // length, digits, letters, symbols, magnitude, fractional

func expand(v string) expansion {
	e := expansion{numeric: make([]float64, dboostNumericFields)}
	var digits, letters, symbols int
	for _, r := range v {
		switch pattern.Categorize(r) {
		case pattern.CatDigit:
			digits++
		case pattern.CatUpper, pattern.CatLower:
			letters++
		default:
			symbols++
		}
	}
	e.numeric[0] = float64(len(v))
	e.numeric[1] = float64(digits)
	e.numeric[2] = float64(letters)
	e.numeric[3] = float64(symbols)
	clean := strings.ReplaceAll(v, ",", "")
	if x, err := strconv.ParseFloat(clean, 64); err == nil {
		e.numeric[4] = x
		e.numeric[5] = x - math.Trunc(x)
		// Tuple-expansion rule: integers in the epoch range are also
		// interpreted as dates (year/month/day-of-week surrogates).
		if x == math.Trunc(x) && x >= 1800 && x <= 2200 {
			e.discrete = append(e.discrete, "century:"+strconv.Itoa(int(x)/100))
		}
	} else {
		e.numeric[4] = math.NaN()
		e.numeric[5] = math.NaN()
	}
	// Discrete fields: first/last character class, value casing shape.
	rs := []rune(v)
	if len(rs) > 0 {
		e.discrete = append(e.discrete,
			"first:"+classOf(rs[0]),
			"last:"+classOf(rs[len(rs)-1]),
		)
	}
	return e
}

// weightedMedian returns the median of xs (xs is modified by sorting).
func weightedMedian(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func classOf(r rune) string {
	switch pattern.Categorize(r) {
	case pattern.CatUpper:
		return "U"
	case pattern.CatLower:
		return "l"
	case pattern.CatDigit:
		return "D"
	default:
		return string(r)
	}
}

// Detect implements Detector.
func (d *DBoost) Detect(values []string) []Prediction {
	theta := d.Theta
	if theta == 0 {
		theta = 0.8
	}
	eps := d.Epsilon
	if eps == 0 {
		eps = 0.05
	}
	dvs := distinct(values)
	if len(dvs) < 3 {
		return nil
	}
	total := float64(len(values))

	exps := make([]expansion, len(dvs))
	for i, dv := range dvs {
		exps[i] = expand(dv.value)
	}

	// Numeric field models: count-weighted median and MAD (robust
	// statistics per Hellerstein's quantitative-cleaning guidance —
	// mean/σ suffers masking, where the outlier inflates σ enough to hide
	// itself).
	median := make([]float64, dboostNumericFields)
	mad := make([]float64, dboostNumericFields)
	seen := make([]bool, dboostNumericFields)
	for fi := 0; fi < dboostNumericFields; fi++ {
		var xs []float64
		for i, dv := range dvs {
			x := exps[i].numeric[fi]
			if math.IsNaN(x) {
				continue
			}
			for c := 0; c < dv.count; c++ {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			continue
		}
		seen[fi] = true
		median[fi] = weightedMedian(xs)
		dev := make([]float64, len(xs))
		for i, x := range xs {
			dev[i] = math.Abs(x - median[fi])
		}
		mad[fi] = weightedMedian(dev)
	}

	// Discrete field histograms.
	hist := map[string]float64{}
	for i, dv := range dvs {
		for _, f := range exps[i].discrete {
			hist[f] += float64(dv.count)
		}
	}

	var out []Prediction
	for i, dv := range dvs {
		fields, deviating := 0, 0
		for fi := 0; fi < dboostNumericFields; fi++ {
			x := exps[i].numeric[fi]
			if math.IsNaN(x) || !seen[fi] {
				continue
			}
			fields++
			scale := 1.4826 * mad[fi]
			if scale < 1e-9 {
				// Constant field: any departure deviates.
				if math.Abs(x-median[fi]) > 1e-9 {
					deviating++
				}
				continue
			}
			if math.Abs(x-median[fi])/scale > 3.5 {
				deviating++
			}
		}
		for _, f := range exps[i].discrete {
			fields++
			if hist[f]/total < eps {
				deviating++
			}
		}
		if fields == 0 {
			continue
		}
		score := float64(deviating) / float64(fields)
		if score >= 1-theta && deviating > 0 {
			out = append(out, Prediction{Index: dv.first, Value: dv.value, Confidence: clamp01(score)})
		}
	}
	return rank(out)
}
