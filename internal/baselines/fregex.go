package baselines

import "regexp"

// FRegex is the fixed-regex type detector used by commercial systems
// (Trifacta, Power BI): a built-in list of data types, each recognized by a
// predefined regular expression. When a strong majority of a column's
// values match one type, the non-conforming minority is flagged, with
// confidence equal to the fraction of conforming values.
type FRegex struct {
	// MajorityThreshold is the minimum conforming fraction for a type to
	// be considered the column's type (default 0.6).
	MajorityThreshold float64
}

// builtinTypes mirrors the ~10 predefined data types of Trifacta-style
// systems (Appendix A, Figure 11).
var builtinTypes = []struct {
	name string
	re   *regexp.Regexp
}{
	{"integer", regexp.MustCompile(`^-?\d{1,3}(,\d{3})*$|^-?\d+$`)},
	{"decimal", regexp.MustCompile(`^-?\d{1,3}(,\d{3})*\.\d+$|^-?\d+\.\d+$`)},
	{"percentage", regexp.MustCompile(`^\d+(\.\d+)?%$`)},
	{"currency", regexp.MustCompile(`^[$€£]\s?\d{1,3}(,\d{3})*(\.\d+)?$`)},
	{"date-ymd", regexp.MustCompile(`^\d{4}[-/.]\d{1,2}[-/.]\d{1,2}$`)},
	{"date-dmy", regexp.MustCompile(`^\d{1,2}[-/.]\d{1,2}[-/.]\d{4}$`)},
	{"date-text", regexp.MustCompile(`^(\d{1,2} )?[A-Z][a-z]{2,8}\.? \d{1,2},? \d{4}$|^[A-Z][a-z]{2,8} \d{4}$`)},
	{"time", regexp.MustCompile(`^\d{1,2}:\d{2}(:\d{2})?$`)},
	{"email", regexp.MustCompile(`^[^@\s]+@[^@\s]+\.[^@\s]+$`)},
	{"url", regexp.MustCompile(`^https?://\S+$`)},
	{"ip-address", regexp.MustCompile(`^\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}$`)},
	{"phone", regexp.MustCompile(`^(\+\d{1,2}[ .-]?)?(\(\d{3}\)[ .-]?|\d{3}[ .-])\d{3}[ .-]\d{4}$`)},
	{"zip", regexp.MustCompile(`^\d{5}(-\d{4})?$`)},
	{"boolean", regexp.MustCompile(`^(?i:yes|no|true|false|y|n)$`)},
}

// Name implements Detector.
func (*FRegex) Name() string { return "F-Regex" }

// Detect implements Detector.
func (f *FRegex) Detect(values []string) []Prediction {
	thresh := f.MajorityThreshold
	if thresh == 0 {
		thresh = 0.6
	}
	dvs := distinct(values)
	if len(dvs) < 2 {
		return nil
	}
	total := len(values)

	bestType := -1
	bestConform := 0
	for ti := range builtinTypes {
		conform := 0
		for _, dv := range dvs {
			if builtinTypes[ti].re.MatchString(dv.value) {
				conform += dv.count
			}
		}
		if conform > bestConform {
			bestConform = conform
			bestType = ti
		}
	}
	if bestType < 0 {
		return nil // column matches no known type: F-Regex is silent
	}
	frac := float64(bestConform) / float64(total)
	if frac < thresh || bestConform == total {
		return nil
	}
	re := builtinTypes[bestType].re
	var out []Prediction
	for _, dv := range dvs {
		if !re.MatchString(dv.value) {
			out = append(out, Prediction{Index: dv.first, Value: dv.value, Confidence: frac})
		}
	}
	return rank(out)
}
