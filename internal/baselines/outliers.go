package baselines

import (
	"math"
	"sort"

	"repro/internal/textdist"
)

// pairwiseDistances computes the pattern-alignment distance matrix over the
// distinct values.
func pairwiseDistances(dvs []distinctValue) [][]float64 {
	toks := make([][]textdist.Symbol, len(dvs))
	for i, dv := range dvs {
		toks[i] = textdist.Tokenize(dv.value)
	}
	d := make([][]float64, len(dvs))
	for i := range d {
		d[i] = make([]float64, len(dvs))
	}
	for i := 0; i < len(dvs); i++ {
		for j := i + 1; j < len(dvs); j++ {
			n := len(toks[i])
			if len(toks[j]) > n {
				n = len(toks[j])
			}
			dist := 0.0
			if n > 0 {
				dist = textdist.SymbolDistance(toks[i], toks[j]) / float64(n)
			}
			d[i][j] = dist
			d[j][i] = dist
		}
	}
	return d
}

// SVDD implements the support vector data description baseline (Tax &
// Duin): describe the column by a ball around a center; values outside the
// ball are outliers ranked by their distance beyond the radius. We use the
// count-weighted medoid as center and the distance quantile covering the
// bulk of the data as radius, with the alignment-style pattern distance.
type SVDD struct {
	// RadiusQuantile is the count-weighted quantile of center distances
	// used as the ball radius (default 0.8).
	RadiusQuantile float64
}

// Name implements Detector.
func (*SVDD) Name() string { return "SVDD" }

// Detect implements Detector.
func (s *SVDD) Detect(values []string) []Prediction {
	q := s.RadiusQuantile
	if q == 0 {
		q = 0.8
	}
	dvs := distinct(values)
	if len(dvs) < 3 {
		return nil
	}
	d := pairwiseDistances(dvs)

	// Count-weighted medoid: minimizes total distance to all rows.
	center := 0
	best := math.Inf(1)
	for i := range dvs {
		sum := 0.0
		for j, dv := range dvs {
			sum += d[i][j] * float64(dv.count)
		}
		if sum < best {
			best = sum
			center = i
		}
	}
	// Radius: the q-quantile of (count-weighted) center distances.
	type cd struct {
		dist  float64
		count int
	}
	cds := make([]cd, len(dvs))
	total := 0
	for i, dv := range dvs {
		cds[i] = cd{d[center][i], dv.count}
		total += dv.count
	}
	sort.Slice(cds, func(i, j int) bool { return cds[i].dist < cds[j].dist })
	radius := 0.0
	cum := 0
	for _, c := range cds {
		cum += c.count
		radius = c.dist
		if float64(cum) >= q*float64(total) {
			break
		}
	}

	var out []Prediction
	for i, dv := range dvs {
		if excess := d[center][i] - radius; excess > 1e-9 {
			out = append(out, Prediction{Index: dv.first, Value: dv.value, Confidence: clamp01(excess)})
		}
	}
	return rank(out)
}

// DBOD implements distance-based outlier detection (Knorr & Ng): a value
// is an outlier if the distance to its nearest neighbor exceeds a
// threshold D; outliers are ranked by that distance.
type DBOD struct {
	// D is the nearest-neighbor distance threshold (default 0.3).
	D float64
}

// Name implements Detector.
func (*DBOD) Name() string { return "DBOD" }

// Detect implements Detector.
func (db *DBOD) Detect(values []string) []Prediction {
	threshold := db.D
	if threshold == 0 {
		threshold = 0.3
	}
	dvs := distinct(values)
	if len(dvs) < 3 {
		return nil
	}
	d := pairwiseDistances(dvs)
	var out []Prediction
	for i, dv := range dvs {
		nn := math.Inf(1)
		for j := range dvs {
			if j != i && d[i][j] < nn {
				nn = d[i][j]
			}
		}
		if nn > threshold {
			out = append(out, Prediction{Index: dv.first, Value: dv.value, Confidence: clamp01(nn)})
		}
	}
	return rank(out)
}

// LOF implements the local outlier factor (Breunig et al., SIGMOD 2000)
// over the pattern distance space, with k weighted by value counts.
type LOF struct {
	// K is the neighborhood size (default 3).
	K int
	// Threshold is the minimum LOF to report (default 1.5).
	Threshold float64
}

// Name implements Detector.
func (*LOF) Name() string { return "LOF" }

// Detect implements Detector.
func (l *LOF) Detect(values []string) []Prediction {
	k := l.K
	if k == 0 {
		k = 3
	}
	thresh := l.Threshold
	if thresh == 0 {
		thresh = 1.5
	}
	dvs := distinct(values)
	if len(dvs) < k+2 {
		return nil
	}
	d := pairwiseDistances(dvs)
	n := len(dvs)
	const eps = 1e-6 // identical patterns have distance 0; keep lrd finite

	// k-distance and neighborhoods.
	kdist := make([]float64, n)
	neigh := make([][]int, n)
	for i := 0; i < n; i++ {
		idx := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				idx = append(idx, j)
			}
		}
		sort.Slice(idx, func(a, b int) bool { return d[i][idx[a]] < d[i][idx[b]] })
		kk := k
		if kk > len(idx) {
			kk = len(idx)
		}
		kdist[i] = d[i][idx[kk-1]]
		// Include all ties at the k-distance.
		for kk < len(idx) && d[i][idx[kk]] == kdist[i] {
			kk++
		}
		neigh[i] = idx[:kk]
	}
	// Local reachability density.
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, j := range neigh[i] {
			reach := d[i][j]
			if kdist[j] > reach {
				reach = kdist[j]
			}
			sum += reach
		}
		lrd[i] = float64(len(neigh[i])) / (sum + eps)
	}
	var out []Prediction
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, j := range neigh[i] {
			sum += lrd[j]
		}
		lof := sum / (float64(len(neigh[i])) * lrd[i])
		if lof > thresh {
			// Squash LOF ∈ (thresh, ∞) into (0, 1).
			out = append(out, Prediction{
				Index: dvs[i].first, Value: dvs[i].value,
				Confidence: clamp01((lof - 1) / (lof + 1)),
			})
		}
	}
	return rank(out)
}
