package baselines

import "repro/internal/pattern"

// Linear implements the linear-complexity deviation detection framework of
// Arning, Agrawal & Raghavan (KDD 1996): scan the values while maintaining
// a regex-like description of everything seen so far (here: the per-
// position union of observed characters plus the observed length range),
// and score each value by how much adding it broadens the description —
// its dissimilarity. As the paper observes, the character-level
// generalization is too coarse-grained, so Linear performs poorly; the
// LinearP variant below first generalizes values into class patterns.
type Linear struct{}

// Name implements Detector.
func (*Linear) Name() string { return "Linear" }

// Detect implements Detector.
func (*Linear) Detect(values []string) []Prediction {
	return linearDetect(values, func(v string) string { return v })
}

// LinearP is Linear applied to generalization-tree patterns (digits → \D,
// letters → \L, symbols verbatim), which substantially improves it.
type LinearP struct{}

// Name implements Detector.
func (*LinearP) Name() string { return "LinearP" }

// Detect implements Detector.
func (*LinearP) Detect(values []string) []Prediction {
	g := pattern.Crude()
	return linearDetect(values, g.Generalize)
}

// linearDetect scores each distinct value by its leave-one-out broadening
// of the column description: positions whose character set it alone
// contributes, and a length outside the range of the rest.
func linearDetect(values []string, xform func(string) string) []Prediction {
	dvs := distinct(values)
	if len(dvs) < 3 {
		return nil
	}
	keys := make([]string, len(dvs))
	maxLen := 0
	for i, dv := range dvs {
		keys[i] = xform(dv.value)
		if len(keys[i]) > maxLen {
			maxLen = len(keys[i])
		}
	}
	// charSupport[p][c] = total count of values whose position p holds
	// byte c; lenSupport[l] = total count of values with length l.
	charSupport := make([]map[byte]int, maxLen)
	for p := range charSupport {
		charSupport[p] = map[byte]int{}
	}
	lenSupport := map[int]int{}
	for i, dv := range dvs {
		k := keys[i]
		lenSupport[len(k)] += dv.count
		for p := 0; p < len(k); p++ {
			charSupport[p][k[p]] += dv.count
		}
	}

	total := 0
	for _, dv := range dvs {
		total += dv.count
	}
	var out []Prediction
	for i, dv := range dvs {
		k := keys[i]
		// Dissimilarity: description breadth attributable to this value
		// alone, normalized by its length.
		broaden := 0
		for p := 0; p < len(k); p++ {
			if charSupport[p][k[p]] == dv.count {
				broaden++
			}
		}
		if lenSupport[len(k)] == dv.count {
			broaden += 2
		}
		if broaden == 0 {
			continue
		}
		norm := float64(len(k) + 2)
		score := float64(broaden) / norm
		// Rare values that broaden the description a lot are suspects.
		rarity := 1 - float64(dv.count)/float64(total)
		out = append(out, Prediction{Index: dv.first, Value: dv.value, Confidence: clamp01(score * rarity)})
	}
	return rank(out)
}
