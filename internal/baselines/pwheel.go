package baselines

import (
	"math"
	"strings"

	"repro/internal/pattern"
)

// PWheel implements the Potter's Wheel baseline (Raman & Hellerstein, VLDB
// 2001): infer the column's structure by choosing, under the minimum
// description length principle, the structure vocabulary whose patterns
// most efficiently encode the values. Potter's Wheel structures are
// sequences of variable-length domains (integers, words) and literal
// delimiters — so patterns here are run-collapsed class shapes like
// "\D,\D" rather than fixed-length templates. Values not conforming to the
// dominant inferred shapes are predicted errors.
//
// This is the paper's canonical *local* method: it sees only the input
// column, so it wrongly flags globally-compatible minorities ("1,000" among
// plain integers) and misses balanced mixes of incompatible formats (the
// 50-50 two-date-format column) — exactly the failure modes Section 1
// discusses.
type PWheel struct {
	// MaxOutlierFraction is the largest fraction of rows that may be
	// declared outliers (default 0.2).
	MaxOutlierFraction float64
}

// pwLevel is one structure vocabulary of the MDL sweep.
type pwLevel struct {
	name string
	lang pattern.Language
	// collapse drops run lengths, turning fixed-length templates into
	// variable-length Potter's Wheel domains.
	collapse bool
}

// pwLevels sweeps from exact values to fully generalized shapes.
var pwLevels = []pwLevel{
	{"values", pattern.Leaf(), false},
	{"digit-shapes", pattern.Crude(), true},
	{"class-shapes", mustLang(pattern.TokenLetter, pattern.TokenLetter, pattern.TokenDigit, pattern.TokenLeaf), true},
	{"any-shape", pattern.Root(), true},
}

func mustLang(u, l, d, s pattern.Token) pattern.Language {
	for _, cand := range pattern.All() {
		if cand.Upper == u && cand.Lower == l && cand.Digit == d && cand.Symbol == s {
			return cand
		}
	}
	panic("baselines: language outside candidate space")
}

// shapeOf renders the value's structure under the level: its generalized
// pattern, with run lengths stripped when the level collapses runs.
func shapeOf(lv pwLevel, v string) string {
	p := lv.lang.Generalize(v)
	if !lv.collapse {
		return p
	}
	// Strip "[n]" run-length annotations: "\D[4].\D[2]" → "\D.\D".
	var b strings.Builder
	for i := 0; i < len(p); i++ {
		if p[i] == '[' {
			for i < len(p) && p[i] != ']' {
				i++
			}
			continue
		}
		b.WriteByte(p[i])
	}
	return b.String()
}

// bitsPerClassChar is the per-character encoding cost (in bits) of a value
// under each tree node: a leaf character is fully determined by the
// pattern; class characters cost the entropy of their class.
func bitsPerClassChar(t pattern.Token) float64 {
	switch t {
	case pattern.TokenUpper, pattern.TokenLower:
		return math.Log2(26)
	case pattern.TokenLetter:
		return math.Log2(52)
	case pattern.TokenDigit:
		return math.Log2(10)
	case pattern.TokenSymbol:
		return math.Log2(33)
	case pattern.TokenAny:
		return math.Log2(95)
	default:
		return 0
	}
}

// encodingBits returns the cost of encoding value v given its shape under
// level lv: class characters cost their class entropy, plus a small
// length-parameter cost per variable-length run.
func encodingBits(lv pwLevel, v string) float64 {
	bits := 0.0
	for _, r := range v {
		var t pattern.Token
		switch pattern.Categorize(r) {
		case pattern.CatUpper:
			t = lv.lang.Upper
		case pattern.CatLower:
			t = lv.lang.Lower
		case pattern.CatDigit:
			t = lv.lang.Digit
		default:
			t = lv.lang.Symbol
		}
		if t != pattern.TokenLeaf {
			bits += bitsPerClassChar(t)
		}
	}
	if lv.collapse {
		bits += 4 * float64(len(pattern.Encode(v))) // run-length parameters
	}
	return bits
}

// Name implements Detector.
func (*PWheel) Name() string { return "PWheel" }

// Detect implements Detector.
func (p *PWheel) Detect(values []string) []Prediction {
	maxOut := p.MaxOutlierFraction
	if maxOut == 0 {
		maxOut = 0.2
	}
	dvs := distinct(values)
	if len(dvs) < 2 {
		return nil
	}
	total := len(values)

	// MDL sweep: total description length = shape dictionary cost +
	// per-value encoding cost.
	const bitsPerShapeChar = 6
	best := pwLevels[0]
	bestDL := math.Inf(1)
	for _, lv := range pwLevels {
		shapes := map[string]bool{}
		encode := 0.0
		for _, dv := range dvs {
			shapes[shapeOf(lv, dv.value)] = true
			encode += encodingBits(lv, dv.value) * float64(dv.count)
		}
		dict := 0.0
		for s := range shapes {
			dict += float64(len(s))*bitsPerShapeChar + 16
		}
		if dl := dict + encode; dl < bestDL {
			bestDL = dl
			best = lv
		}
	}

	// Under the chosen structure, values whose shape has only marginal
	// support are outliers — provided a dominant shape explains the column.
	shapeCount := map[string]int{}
	shapeOfDV := make([]string, len(dvs))
	for i, dv := range dvs {
		shapeOfDV[i] = shapeOf(best, dv.value)
		shapeCount[shapeOfDV[i]] += dv.count
	}
	if len(shapeCount) < 2 {
		return nil
	}
	dominant := 0
	for _, c := range shapeCount {
		if c > dominant {
			dominant = c
		}
	}
	conformThresh := int(float64(total) * maxOut)
	if conformThresh < 1 {
		conformThresh = 1
	}
	if dominant < total-conformThresh {
		return nil // no dominant structure: MDL keeps multiple patterns
	}
	conforming := 0
	for _, c := range shapeCount {
		if c > conformThresh {
			conforming += c
		}
	}
	conf := float64(conforming) / float64(total)
	var out []Prediction
	for i, dv := range dvs {
		if shapeCount[shapeOfDV[i]] <= conformThresh {
			out = append(out, Prediction{Index: dv.first, Value: dv.value, Confidence: conf})
		}
	}
	return rank(out)
}
