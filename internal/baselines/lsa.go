package baselines

import (
	"math"

	"repro/internal/pattern"
)

// LSA implements the entropy-based local search outlier detection of He,
// Deng & Xu: outliers are the values whose removal most reduces the
// entropy of the column's (pattern) distribution. Values are generalized
// into class patterns first, matching the paper's adaptation.
type LSA struct {
	// MaxOutlierFraction bounds how much of the column may be removed
	// (default 0.25).
	MaxOutlierFraction float64
}

// Name implements Detector.
func (*LSA) Name() string { return "LSA" }

// entropy returns the Shannon entropy of the count distribution.
func entropy(counts map[string]int, total int) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Detect implements Detector.
func (l *LSA) Detect(values []string) []Prediction {
	maxOut := l.MaxOutlierFraction
	if maxOut == 0 {
		maxOut = 0.25
	}
	dvs := distinct(values)
	if len(dvs) < 3 {
		return nil
	}
	g := pattern.Crude()
	counts := map[string]int{}
	patOf := make([]string, len(dvs))
	total := 0
	for i, dv := range dvs {
		patOf[i] = g.Generalize(dv.value)
		counts[patOf[i]] += dv.count
		total += dv.count
	}
	if len(counts) < 2 {
		return nil
	}
	baseH := entropy(counts, total)
	if baseH == 0 {
		return nil
	}

	// Local search: greedily remove the pattern group whose removal gives
	// the largest per-element entropy reduction, until the budget is spent
	// or entropy stops decreasing.
	removed := map[string]bool{}
	budget := int(float64(total) * maxOut)
	curH := baseH
	curTotal := total
	gain := map[string]float64{}
	for {
		bestPat := ""
		bestGain := 0.0
		for p, c := range counts {
			if removed[p] || c > budget {
				continue
			}
			without := map[string]int{}
			for q, qc := range counts {
				if q != p && !removed[q] {
					without[q] = qc
				}
			}
			h := entropy(without, curTotal-c)
			perElem := (curH - h) / float64(c)
			if perElem > bestGain {
				bestGain = perElem
				bestPat = p
			}
		}
		if bestPat == "" {
			break
		}
		removed[bestPat] = true
		gain[bestPat] = bestGain
		c := counts[bestPat]
		budget -= c
		curTotal -= c
		without := map[string]int{}
		for q, qc := range counts {
			if !removed[q] {
				without[q] = qc
			}
		}
		curH = entropy(without, curTotal)
	}

	var out []Prediction
	for i, dv := range dvs {
		if gfn, ok := gain[patOf[i]]; ok {
			out = append(out, Prediction{
				Index: dv.first, Value: dv.value,
				Confidence: clamp01(gfn / (baseH + 1)),
			})
		}
	}
	return rank(out)
}
