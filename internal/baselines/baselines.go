// Package baselines implements the ten single-column error detection
// baselines that the Auto-Detect paper compares against (Section 4.2):
// fixed-regex type detection (F-Regex), Potter's Wheel MDL pattern
// inference (PWheel), dBoost tuple expansion, the Linear deviation
// detector of Arning et al. and its pattern variant (LinearP), the
// compression-based dissimilarity measure (CDM), entropy local search
// (LSA), support vector data description (SVDD), distance-based outliers
// (DBOD), the local outlier factor (LOF), and the Union ensemble.
//
// Every method implements Detector: given a column it returns per-value
// error predictions with confidences in [0,1], ranked descending, so the
// evaluation harness can pool predictions across columns for precision@k.
package baselines

import "sort"

// Prediction is one suspected error in a column.
type Prediction struct {
	// Index is the row of the suspected value's first occurrence.
	Index int
	// Value is the suspected erroneous value.
	Value string
	// Confidence in [0,1] ranks predictions across columns.
	Confidence float64
}

// Detector is a single-column error detection method.
type Detector interface {
	// Name returns the method's display name used in the paper's figures.
	Name() string
	// Detect returns suspected errors ranked by descending confidence.
	// Clean columns should return nothing or only low-confidence entries.
	Detect(values []string) []Prediction
}

// distinctValue groups equal cells of a column.
type distinctValue struct {
	value string
	count int
	first int
}

// distinct collapses a column to its distinct values with counts and first
// occurrence, preserving first-seen order. Empty cells are missing data,
// not values, and are skipped.
func distinct(values []string) []distinctValue {
	idx := map[string]int{}
	var out []distinctValue
	for i, v := range values {
		if v == "" {
			continue
		}
		if j, ok := idx[v]; ok {
			out[j].count++
			continue
		}
		idx[v] = len(out)
		out = append(out, distinctValue{value: v, count: 1, first: i})
	}
	return out
}

// rank sorts predictions by descending confidence (stable) and drops
// non-positive ones.
func rank(ps []Prediction) []Prediction {
	out := ps[:0]
	for _, p := range ps {
		if p.Confidence > 0 {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	return out
}

// clamp01 clips x into [0,1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
