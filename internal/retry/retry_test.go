package retry

import (
	"context"
	"database/sql/driver"
	"errors"
	"fmt"
	"os"
	"syscall"
	"testing"
	"time"
)

// instant makes a Policy that records backoffs instead of sleeping.
func instant(p Policy, slept *[]time.Duration) Policy {
	p.Sleep = func(_ context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
	return p
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var slept []time.Duration
	p := instant(Policy{MaxAttempts: 5}, &slept)
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2", len(slept))
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	var slept []time.Duration
	p := instant(Policy{MaxAttempts: 5}, &slept)
	calls := 0
	permanent := errors.New("no such corpus")
	err := p.Do(context.Background(), func() error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) {
		t.Fatalf("Do = %v, want the permanent error", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1 (no retry of permanent errors)", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	p := instant(Policy{MaxAttempts: 3}, &slept)
	calls := 0
	base := Transient(errors.New("still flaky"))
	err := p.Do(context.Background(), func() error { calls++; return base })
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
	if !errors.Is(err, base) {
		t.Errorf("exhaustion error %v does not wrap the last failure", err)
	}
}

func TestDoHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxAttempts: 5}
	err := p.Do(ctx, func() error { return Transient(errors.New("x")) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	p1 := Policy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Seed: 42}
	p2 := Policy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Seed: 42}
	var s1, s2 []time.Duration
	fail := func() error { return Transient(errors.New("x")) }
	_ = instant(p1, &s1).Do(context.Background(), fail)
	_ = instant(p2, &s2).Do(context.Background(), fail)
	if len(s1) != 5 || len(s2) != 5 {
		t.Fatalf("expected 5 backoffs, got %d and %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("backoff %d: %v vs %v — same seed must give same schedule", i, s1[i], s2[i])
		}
		if s1[i] > 40*time.Millisecond {
			t.Errorf("backoff %d = %v exceeds MaxDelay", i, s1[i])
		}
		if s1[i] <= 0 {
			t.Errorf("backoff %d = %v, want positive", i, s1[i])
		}
	}
	// A different seed should (overwhelmingly) produce a different schedule.
	var s3 []time.Duration
	p3 := Policy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Seed: 43}
	_ = instant(p3, &s3).Do(context.Background(), fail)
	same := true
	for i := range s1 {
		if s1[i] != s3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter schedules")
	}
}

func TestOnRetryObservesAttempts(t *testing.T) {
	var attempts []int
	var slept []time.Duration
	p := instant(Policy{MaxAttempts: 3, OnRetry: func(a int, _ error, _ time.Duration) {
		attempts = append(attempts, a)
	}}, &slept)
	_ = p.Do(context.Background(), func() error { return Transient(errors.New("x")) })
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Errorf("OnRetry saw attempts %v, want [1 2]", attempts)
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("anonymous"), false},
		{Transient(errors.New("x")), true},
		{fmt.Errorf("wrapped: %w", Transient(errors.New("x"))), true},
		{Permanent(syscall.EAGAIN), false},
		{syscall.EAGAIN, true},
		{syscall.EINTR, true},
		{syscall.ESTALE, true},
		{syscall.EIO, true},
		{syscall.EMFILE, true},
		{&os.PathError{Op: "open", Path: "x", Err: syscall.EBUSY}, true},
		{&os.PathError{Op: "open", Path: "x", Err: syscall.ENOENT}, false},
		{os.ErrNotExist, false},
		{os.ErrPermission, false},
		{os.ErrDeadlineExceeded, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		// SQL drivers: ErrBadConn and the transient message classes.
		{driver.ErrBadConn, true},
		{fmt.Errorf("exec: %w", driver.ErrBadConn), true},
		{errors.New("read tcp 10.0.0.1:5432: connection reset by peer"), true},
		{errors.New("Error 1040: Too Many Connections"), true},
		{errors.New("pq: deadlock detected"), true},
		{errors.New("Error 1213: Deadlock found when trying to get lock"), true},
		{errors.New("pq: syntax error at or near \"SELEC\""), false},
		// Permanent() outranks a transient-looking message.
		{Permanent(errors.New("connection reset by peer")), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestTransientPermanentNilPassthrough(t *testing.T) {
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Error("markers must pass nil through")
	}
}

// TestDoCtxAttemptTimeoutRetriesHungAttempt: an attempt that blocks past
// AttemptTimeout is abandoned via its per-attempt context and retried; the
// deadline expiry is classified transient even though a bare
// context.DeadlineExceeded is not.
func TestDoCtxAttemptTimeoutRetriesHungAttempt(t *testing.T) {
	var slept []time.Duration
	p := instant(Policy{MaxAttempts: 3, AttemptTimeout: 5 * time.Millisecond}, &slept)
	calls := 0
	err := p.DoCtx(context.Background(), func(ctx context.Context) error {
		calls++
		if calls == 1 {
			<-ctx.Done() // hang until the per-attempt deadline kills us
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("DoCtx = %v, want nil after retrying the hung attempt", err)
	}
	if calls != 2 {
		t.Errorf("op ran %d times, want 2", calls)
	}
	if len(slept) != 1 {
		t.Errorf("slept %d times, want 1", len(slept))
	}
}

// TestDoCtxAttemptTimeoutExhaustion: every attempt hanging burns through
// MaxAttempts and surfaces the per-attempt timeout, not a silent hang.
func TestDoCtxAttemptTimeoutExhaustion(t *testing.T) {
	var slept []time.Duration
	p := instant(Policy{MaxAttempts: 3, AttemptTimeout: time.Millisecond}, &slept)
	calls := 0
	err := p.DoCtx(context.Background(), func(ctx context.Context) error {
		calls++
		<-ctx.Done()
		return ctx.Err()
	})
	if err == nil {
		t.Fatal("DoCtx = nil, want exhaustion error")
	}
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("exhaustion error %v does not wrap the attempt deadline", err)
	}
}

// TestDoCtxParentDeadlineStaysFatal: the caller's own context expiring must
// end the call with that error — the per-attempt classification only
// rescues per-attempt deadlines.
func TestDoCtxParentDeadlineStaysFatal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	var slept []time.Duration
	p := instant(Policy{MaxAttempts: 10, AttemptTimeout: time.Hour}, &slept)
	calls := 0
	err := p.DoCtx(ctx, func(actx context.Context) error {
		calls++
		<-actx.Done() // the parent deadline propagates into the attempt ctx
		return actx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoCtx = %v, want the parent deadline error", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1 (no retry once the caller's deadline fired)", calls)
	}
}

// TestDoCtxAttemptContextDerivesFromCall: attempt contexts inherit values
// and cancellation from the call context.
func TestDoCtxAttemptContextDerivesFromCall(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	p := Policy{MaxAttempts: 1, AttemptTimeout: time.Hour}
	err := p.DoCtx(ctx, func(actx context.Context) error {
		if actx.Value(key{}) != "v" {
			t.Error("attempt context lost the call context's values")
		}
		if _, ok := actx.Deadline(); !ok {
			t.Error("attempt context carries no deadline despite AttemptTimeout")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDoCtxNoAttemptTimeoutPassesContextThrough: with AttemptTimeout unset
// the attempt sees the caller's context unmodified (no spurious deadline)
// and bare deadline errors keep their fatal classification.
func TestDoCtxNoAttemptTimeoutPassesContextThrough(t *testing.T) {
	p := Policy{MaxAttempts: 5}
	calls := 0
	err := p.DoCtx(context.Background(), func(actx context.Context) error {
		calls++
		if _, ok := actx.Deadline(); ok {
			t.Error("attempt context has a deadline but AttemptTimeout is unset")
		}
		return context.DeadlineExceeded
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoCtx = %v, want the deadline error back", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1 (bare deadline errors stay fatal without AttemptTimeout)", calls)
	}
}

func TestNetworkErrnosAreTransient(t *testing.T) {
	for _, errno := range []syscall.Errno{syscall.ECONNREFUSED, syscall.ECONNRESET, syscall.ECONNABORTED, syscall.EPIPE} {
		if !IsTransient(fmt.Errorf("dial: %w", errno)) {
			t.Errorf("IsTransient(%v) = false, want true", errno)
		}
	}
}

func TestAfterBackoffFloor(t *testing.T) {
	base := errors.New("overloaded")
	if _, ok := BackoffFloor(base); ok {
		t.Fatal("unmarked error must carry no floor")
	}
	err := After(Transient(base), 2*time.Second)
	floor, ok := BackoffFloor(err)
	if !ok || floor != 2*time.Second {
		t.Fatalf("BackoffFloor = %v %v, want 2s true", floor, ok)
	}
	if !IsTransient(err) {
		t.Fatal("After must preserve the transient classification")
	}
	if !errors.Is(err, base) {
		t.Fatal("After must preserve errors.Is against the base error")
	}
	// Nested floors: the strictest (largest) wins.
	nested := After(fmt.Errorf("wrap: %w", After(base, 3*time.Second)), time.Second)
	if floor, ok := BackoffFloor(nested); !ok || floor != 3*time.Second {
		t.Fatalf("nested BackoffFloor = %v %v, want 3s true", floor, ok)
	}
	// Passthroughs.
	if After(nil, time.Second) != nil {
		t.Fatal("After(nil) must stay nil")
	}
	if After(base, 0) != base {
		t.Fatal("After with a non-positive floor must return the error unchanged")
	}
}

func TestDoCtxHonorsBackoffFloor(t *testing.T) {
	p := Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	start := time.Now()
	err := p.DoCtx(context.Background(), func(context.Context) error {
		return After(Transient(errors.New("503")), 50*time.Millisecond)
	})
	if err == nil {
		t.Fatal("op always fails")
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("retried after %v, want >= the 50ms Retry-After floor", elapsed)
	}
}

// stubBudget counts withdrawals and deposits, denying after a cap.
type stubBudget struct {
	cap       int
	withdraws int
	deposits  int
}

func (s *stubBudget) Withdraw() bool {
	if s.withdraws >= s.cap {
		return false
	}
	s.withdraws++
	return true
}

func (s *stubBudget) Deposit() { s.deposits++ }

func TestDoCtxBudgetStopsRetries(t *testing.T) {
	b := &stubBudget{cap: 1}
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Budget: b}
	calls := 0
	err := p.DoCtx(context.Background(), func(context.Context) error {
		calls++
		return Transient(errors.New("down"))
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("DoCtx = %v, want ErrBudgetExhausted", err)
	}
	if calls != 2 {
		t.Fatalf("op ran %d times, want 2 (first attempt free, one funded retry)", calls)
	}
	if b.withdraws != 1 {
		t.Fatalf("withdraws = %d, want 1", b.withdraws)
	}
}

func TestDoCtxBudgetDepositsOnSuccess(t *testing.T) {
	b := &stubBudget{cap: 100}
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Budget: b}
	if err := p.DoCtx(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.deposits != 1 {
		t.Fatalf("deposits = %d, want 1", b.deposits)
	}
	if b.withdraws != 0 {
		t.Fatalf("withdraws = %d, want 0 (no retry happened)", b.withdraws)
	}
}
