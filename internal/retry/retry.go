// Package retry implements the capped-exponential-backoff retry policy the
// training pipeline applies to transient I/O: a multi-hour corpus build over
// an NFS mount or a busy disk must not abort because one open() returned
// EAGAIN. Backoff jitter is derived from a seedable splitmix64 stream, so a
// resumed build retries on exactly the same schedule as the original — a
// property the chaos harness relies on when asserting byte-identical models.
//
// Error classification is explicit: errors are retried only when they are
// provably transient (a known retryable errno, a deadline, or a value marked
// with Transient). Everything else — os.ErrNotExist, permission errors,
// malformed-file parse errors — fails fast, because retrying a deterministic
// failure only delays the quarantine decision.
package retry

import (
	"context"
	"errors"
	"fmt"
	"os"
	"syscall"
	"time"
)

// Policy configures Do. The zero value is usable: DefaultAttempts attempts,
// DefaultBaseDelay base backoff, DefaultMaxDelay cap, IsTransient
// classification, real sleeping.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default DefaultAttempts). 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default
	// DefaultBaseDelay); each subsequent retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default DefaultMaxDelay).
	MaxDelay time.Duration
	// Seed drives the deterministic jitter stream. Two Policies with the
	// same Seed back off on the same schedule.
	Seed uint64
	// Classify reports whether an error is worth retrying (default
	// IsTransient).
	Classify func(error) bool
	// Sleep waits out a backoff; tests inject it to run instantly. The
	// default honors context cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes each scheduled retry (attempt is the
	// 1-based attempt that just failed).
	OnRetry func(attempt int, err error, backoff time.Duration)
}

// Defaults for the zero Policy.
const (
	DefaultAttempts  = 3
	DefaultBaseDelay = 50 * time.Millisecond
	DefaultMaxDelay  = 2 * time.Second
)

// Do runs op until it succeeds, returns a non-retryable error, exhausts
// MaxAttempts, or the context is cancelled. The returned error is the last
// error from op (wrapped with the attempt count when attempts were
// exhausted), or the context error when cancelled mid-backoff.
func (p Policy) Do(ctx context.Context, op func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = DefaultMaxDelay
	}
	classify := p.Classify
	if classify == nil {
		classify = IsTransient
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(); err == nil {
			return nil
		}
		if !classify(err) {
			return err
		}
		if attempt >= attempts {
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempts, err)
		}
		d := backoff(base, maxd, attempt, p.Seed)
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, d)
		}
		if serr := sleep(ctx, d); serr != nil {
			return serr
		}
	}
}

// backoff computes the capped exponential delay for the retry after the
// given 1-based failed attempt, with deterministic "equal jitter": half the
// window is guaranteed, the other half is drawn from splitmix64(seed,
// attempt) — so concurrent retriers with different seeds decorrelate while
// a reseeded rerun reproduces its schedule exactly.
func backoff(base, maxd time.Duration, attempt int, seed uint64) time.Duration {
	d := base << (attempt - 1)
	if d <= 0 || d > maxd { // shift overflow or past the cap
		d = maxd
	}
	half := d / 2
	r := splitmix64(seed ^ (uint64(attempt) * 0x9e3779b97f4a7c15))
	return half + time.Duration(r%uint64(half+1))
}

// splitmix64 is the finalizer behind the jitter stream (same construction
// as the pipeline reservoir's replacement decisions).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sleepCtx is the default Sleep: a timer that aborts on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transientMarker tags an error as retryable regardless of its type.
type transientMarker struct{ err error }

func (t *transientMarker) Error() string { return t.err.Error() }
func (t *transientMarker) Unwrap() error { return t.err }

// permanentMarker tags an error as never-retryable.
type permanentMarker struct{ err error }

func (p *permanentMarker) Error() string { return p.err.Error() }
func (p *permanentMarker) Unwrap() error { return p.err }

// Transient marks err as retryable: IsTransient returns true for it and
// anything wrapping it. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientMarker{err}
}

// Permanent marks err as non-retryable even if its underlying cause would
// otherwise classify as transient. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentMarker{err}
}

// retryableErrnos are the syscall errors worth a second chance: interrupted
// or would-block calls, resource exhaustion that drains (file tables),
// timeouts, connection resets, stale NFS handles and plain EIO (which on
// network filesystems is routinely transient).
var retryableErrnos = []syscall.Errno{
	syscall.EINTR,
	syscall.EAGAIN,
	syscall.EBUSY,
	syscall.ETIMEDOUT,
	syscall.ECONNRESET,
	syscall.ESTALE,
	syscall.EIO,
	syscall.ENFILE,
	syscall.EMFILE,
}

// IsTransient is the default error classifier: true for values marked with
// Transient, deadline expiries, and the retryable errno set; false for
// values marked with Permanent, for definitive filesystem answers
// (not-exist, permission, invalid), for context errors, and for anything
// unrecognized — unknown failures are treated as real, not retried into.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var pm *permanentMarker
	if errors.As(err, &pm) {
		return false
	}
	var tm *transientMarker
	if errors.As(err, &tm) {
		return true
	}
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, os.ErrNotExist), errors.Is(err, os.ErrPermission), errors.Is(err, os.ErrInvalid):
		return false
	case errors.Is(err, os.ErrDeadlineExceeded):
		return true
	}
	for _, errno := range retryableErrnos {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}
