// Package retry implements the capped-exponential-backoff retry policy the
// training pipeline applies to transient I/O: a multi-hour corpus build over
// an NFS mount or a busy disk must not abort because one open() returned
// EAGAIN. Backoff jitter is derived from a seedable splitmix64 stream, so a
// resumed build retries on exactly the same schedule as the original — a
// property the chaos harness relies on when asserting byte-identical models.
//
// Error classification is explicit: errors are retried only when they are
// provably transient (a known retryable errno, a deadline, or a value marked
// with Transient). Everything else — os.ErrNotExist, permission errors,
// malformed-file parse errors — fails fast, because retrying a deterministic
// failure only delays the quarantine decision.
package retry

import (
	"context"
	"database/sql/driver"
	"errors"
	"fmt"
	"os"
	"strings"
	"syscall"
	"time"
)

// Budget bounds retry volume across every call sharing it — the
// fleet-level defence against retry amplification. Withdraw is consulted
// before each scheduled retry (never the first attempt) and returns false
// when the budget is exhausted; Deposit credits the budget after each
// successful attempt. internal/resilience provides the token-bucket
// implementation; the interface lives here so Policy stays dependency-free.
type Budget interface {
	// Withdraw spends one retry token, reporting false when none remain.
	Withdraw() bool
	// Deposit credits a (fractional) token on success.
	Deposit()
}

// ErrBudgetExhausted marks retries abandoned because the shared Budget ran
// dry. It wraps the operation's last error, so callers can still see what
// kept failing.
var ErrBudgetExhausted = errors.New("retry: budget exhausted")

// Policy configures Do. The zero value is usable: DefaultAttempts attempts,
// DefaultBaseDelay base backoff, DefaultMaxDelay cap, IsTransient
// classification, real sleeping.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default DefaultAttempts). 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default
	// DefaultBaseDelay); each subsequent retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default DefaultMaxDelay).
	MaxDelay time.Duration
	// Seed drives the deterministic jitter stream. Two Policies with the
	// same Seed back off on the same schedule.
	Seed uint64
	// AttemptTimeout, when positive, bounds each individual attempt with its
	// own context.WithTimeout derived from the call context. An attempt that
	// dies of its per-attempt deadline while the call context is still alive
	// is classified as transient (a hung upload is retried from scratch);
	// the call context expiring stays fatal. Only DoCtx attempts can observe
	// the per-attempt context; Do's op runs under the wall clock alone.
	AttemptTimeout time.Duration
	// Classify reports whether an error is worth retrying (default
	// IsTransient).
	Classify func(error) bool
	// Sleep waits out a backoff; tests inject it to run instantly. The
	// default honors context cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes each scheduled retry (attempt is the
	// 1-based attempt that just failed).
	OnRetry func(attempt int, err error, backoff time.Duration)
	// Budget, when set, gates every scheduled retry on a shared token
	// bucket: a retry that cannot Withdraw a token ends the call with
	// ErrBudgetExhausted wrapping the last error, and each success
	// Deposits back into the bucket. The first attempt is never charged —
	// budgets bound amplification, not offered load.
	Budget Budget
}

// Defaults for the zero Policy.
const (
	DefaultAttempts  = 3
	DefaultBaseDelay = 50 * time.Millisecond
	DefaultMaxDelay  = 2 * time.Second
)

// Do runs op until it succeeds, returns a non-retryable error, exhausts
// MaxAttempts, or the context is cancelled. The returned error is the last
// error from op (wrapped with the attempt count when attempts were
// exhausted), or the context error when cancelled mid-backoff.
func (p Policy) Do(ctx context.Context, op func() error) error {
	return p.DoCtx(ctx, func(context.Context) error { return op() })
}

// DoCtx is Do for context-aware operations: each attempt receives its own
// context, derived from ctx and — when AttemptTimeout is set — bounded by
// a fresh per-attempt deadline, so one hung attempt (a stalled HTTP upload,
// a wedged NFS read) is abandoned and retried instead of pinning the whole
// call until the caller's deadline. An attempt that fails because its own
// per-attempt deadline expired is retryable regardless of Classify; ctx
// itself expiring ends the call with ctx's error.
func (p Policy) DoCtx(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = DefaultMaxDelay
	}
	classify := p.Classify
	if classify == nil {
		classify = IsTransient
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = p.attempt(ctx, op)
		if err == nil {
			if p.Budget != nil {
				p.Budget.Deposit()
			}
			return nil
		}
		if !classify(err) && !(p.AttemptTimeout > 0 && isAttemptTimeout(ctx, err)) {
			return err
		}
		if attempt >= attempts {
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempts, err)
		}
		if p.Budget != nil && !p.Budget.Withdraw() {
			return fmt.Errorf("%w after attempt %d: %w", ErrBudgetExhausted, attempt, err)
		}
		d := backoff(base, maxd, attempt, p.Seed)
		if f, ok := BackoffFloor(err); ok && f > d {
			// A server-directed pacing hint (Retry-After) outranks our own
			// schedule: the floor is the earliest the server wants us back.
			d = f
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, d)
		}
		if serr := sleep(ctx, d); serr != nil {
			return serr
		}
	}
}

// attempt runs op once under the per-attempt timeout, when configured.
func (p Policy) attempt(ctx context.Context, op func(ctx context.Context) error) error {
	if p.AttemptTimeout <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, p.AttemptTimeout)
	defer cancel()
	err := op(actx)
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		// The attempt died of its own deadline (or reacted to it) while the
		// call context is still live: that is exactly the hung-I/O case the
		// per-attempt timeout exists for, so mark it retryable even though
		// bare deadline errors classify as fatal.
		return Transient(fmt.Errorf("retry: attempt exceeded %s: %w", p.AttemptTimeout, err))
	}
	return err
}

// isAttemptTimeout is a second line of defence for operations that surface
// a per-attempt deadline as a plain context.DeadlineExceeded (for example
// an http.Client wrapping the attempt context's expiry) without the
// attempt wrapper seeing actx.Err() first. If the error is a deadline
// expiry but the call context is still alive, the deadline can only have
// been the per-attempt one.
func isAttemptTimeout(ctx context.Context, err error) bool {
	return errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil
}

// backoff computes the capped exponential delay for the retry after the
// given 1-based failed attempt, with deterministic "equal jitter": half the
// window is guaranteed, the other half is drawn from splitmix64(seed,
// attempt) — so concurrent retriers with different seeds decorrelate while
// a reseeded rerun reproduces its schedule exactly.
func backoff(base, maxd time.Duration, attempt int, seed uint64) time.Duration {
	d := base << (attempt - 1)
	if d <= 0 || d > maxd { // shift overflow or past the cap
		d = maxd
	}
	half := d / 2
	r := splitmix64(seed ^ (uint64(attempt) * 0x9e3779b97f4a7c15))
	return half + time.Duration(r%uint64(half+1))
}

// splitmix64 is the finalizer behind the jitter stream (same construction
// as the pipeline sample's priority hashing).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sleepCtx is the default Sleep: a timer that aborts on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transientMarker tags an error as retryable regardless of its type.
type transientMarker struct{ err error }

func (t *transientMarker) Error() string { return t.err.Error() }
func (t *transientMarker) Unwrap() error { return t.err }

// permanentMarker tags an error as never-retryable.
type permanentMarker struct{ err error }

func (p *permanentMarker) Error() string { return p.err.Error() }
func (p *permanentMarker) Unwrap() error { return p.err }

// Transient marks err as retryable: IsTransient returns true for it and
// anything wrapping it. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientMarker{err}
}

// Permanent marks err as non-retryable even if its underlying cause would
// otherwise classify as transient. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentMarker{err}
}

// afterMarker attaches a server-directed backoff floor to an error — the
// parsed Retry-After of a 503/429 response. DoCtx never sleeps less than
// the floor before the next attempt.
type afterMarker struct {
	err   error
	floor time.Duration
}

func (a *afterMarker) Error() string { return a.err.Error() }
func (a *afterMarker) Unwrap() error { return a.err }

// After attaches a backoff floor to err (typically alongside Transient):
// the retry before the next attempt waits at least floor, no matter what
// the exponential schedule says. A nil err stays nil; a non-positive floor
// attaches nothing.
func After(err error, floor time.Duration) error {
	if err == nil || floor <= 0 {
		return err
	}
	return &afterMarker{err: err, floor: floor}
}

// BackoffFloor reports the largest backoff floor attached anywhere in
// err's chain, or false when none is.
func BackoffFloor(err error) (time.Duration, bool) {
	var floor time.Duration
	found := false
	for err != nil {
		if am, ok := err.(*afterMarker); ok {
			if am.floor > floor {
				floor = am.floor
			}
			found = true
		}
		err = errors.Unwrap(err)
	}
	return floor, found
}

// retryableErrnos are the syscall errors worth a second chance: interrupted
// or would-block calls, resource exhaustion that drains (file tables),
// timeouts, connection resets/refusals/aborts and broken pipes (a peer —
// say a restarting coordinator — that will be back), stale NFS handles and
// plain EIO (which on network filesystems is routinely transient).
var retryableErrnos = []syscall.Errno{
	syscall.EINTR,
	syscall.EAGAIN,
	syscall.EBUSY,
	syscall.ETIMEDOUT,
	syscall.ECONNRESET,
	syscall.ECONNREFUSED,
	syscall.ECONNABORTED,
	syscall.EPIPE,
	syscall.ESTALE,
	syscall.EIO,
	syscall.ENFILE,
	syscall.EMFILE,
}

// IsTransient is the default error classifier: true for values marked with
// Transient, deadline expiries, the retryable errno set, driver.ErrBadConn,
// and the transient SQL error strings database drivers surface; false for
// values marked with Permanent, for definitive filesystem answers
// (not-exist, permission, invalid), for context errors, and for anything
// unrecognized — unknown failures are treated as real, not retried into.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var pm *permanentMarker
	if errors.As(err, &pm) {
		return false
	}
	var tm *transientMarker
	if errors.As(err, &tm) {
		return true
	}
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, os.ErrNotExist), errors.Is(err, os.ErrPermission), errors.Is(err, os.ErrInvalid):
		return false
	case errors.Is(err, os.ErrDeadlineExceeded):
		return true
	}
	for _, errno := range retryableErrnos {
		if errors.Is(err, errno) {
			return true
		}
	}
	if errors.Is(err, driver.ErrBadConn) {
		return true
	}
	msg := strings.ToLower(err.Error())
	for _, marker := range transientSQLMarkers {
		if strings.Contains(msg, marker) {
			return true
		}
	}
	return false
}

// transientSQLMarkers are error-message substrings common across SQL
// drivers for failures that clear on their own: a dropped connection, a
// server at its connection cap, a lock cycle the engine broke by killing
// one victim. Substring matching is crude, but database/sql drivers
// expose most of these only as strings — and a false positive merely
// costs a bounded, budgeted retry.
var transientSQLMarkers = []string{
	"connection reset",
	"too many connections",
	"deadlock",
}
