package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
	"repro/internal/semantic"
)

// roundtrip clones a detector through Save/Load, yielding a distinct
// *core.Detector instance for swap tests.
func roundtrip(t *testing.T, det *core.Detector) *core.Detector {
	t.Helper()
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// brokenDetector builds a structurally valid detector whose statistics are
// nil, so any scoring attempt panics — the "detector blows up mid-request"
// fault.
func brokenDetector(t *testing.T) *core.Detector {
	t.Helper()
	det, err := core.NewDetector([]*core.Calibration{{Theta: -0.5, TargetPrecision: 0.9}}, core.AggMaxConfidence)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestContentTypeEnforced(t *testing.T) {
	s := testServer(t)
	for _, ct := range []string{"", "text/plain", "application/xml", "application/json junk;;"} {
		req, err := http.NewRequest("POST", s.URL+"/v1/check-pair", strings.NewReader(`{"a":"x","b":"y"}`))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("Content-Type %q: status %d, want 415", ct, resp.StatusCode)
		}
	}
	// Parameters on the right media type are fine.
	req, _ := http.NewRequest("POST", s.URL+"/v1/check-pair", strings.NewReader(`{"a":"2011-01-01","b":"2011/01/01"}`))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("application/json with charset: status %d", resp.StatusCode)
	}
}

func TestBodyCapReturns413(t *testing.T) {
	det, sem := trainedModel(t)
	svc := New(det, sem)
	svc.MaxBodyBytes = 256
	s := httptest.NewServer(svc.Handler())
	defer s.Close()

	big := fmt.Sprintf(`{"values": [%q]}`, strings.Repeat("x", 4096))
	resp, err := http.Post(s.URL+"/v1/check-column", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	resp, _ = postJSON(t, s.URL+"/v1/check-pair", map[string]string{"a": "1", "b": "2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after cap: status %d", resp.StatusCode)
	}
}

func TestPanicRecoveryKeepsServing(t *testing.T) {
	svc := New(brokenDetector(t), nil)
	s := httptest.NewServer(svc.Handler())
	defer s.Close()

	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, s.URL+"/v1/check-column", map[string]any{
			"values": []string{"a", "b", "c"},
		})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500 (body %s)", i, resp.StatusCode, body)
		}
		if resp.Header.Get(resilience.HeaderRequestID) == "" {
			t.Error("500 response missing X-Request-Id header")
		}
		var e struct {
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.RequestID == "" {
			t.Errorf("500 body missing request_id: %s", body)
		}
	}

	// The process survived: probes still answer.
	resp, err := http.Get(s.URL + "/v1/livez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("livez after panics: status %d", resp.StatusCode)
	}
}

func TestProbesAndNotReady(t *testing.T) {
	svc := New(nil, nil) // no model yet
	s := httptest.NewServer(svc.Handler())
	defer s.Close()

	get := func(path string) int {
		resp, err := http.Get(s.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/v1/livez"); got != http.StatusOK {
		t.Errorf("livez = %d", got)
	}
	if got := get("/v1/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz before model = %d", got)
	}
	if got := get("/v1/health"); got != http.StatusServiceUnavailable {
		t.Errorf("health before model = %d", got)
	}
	if resp, _ := postJSON(t, s.URL+"/v1/check-pair", map[string]string{"a": "1", "b": "2"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("check-pair before model = %d", resp.StatusCode)
	}

	det, sem := trainedModel(t)
	if err := svc.Swap(det, sem); err != nil {
		t.Fatal(err)
	}
	if got := get("/v1/readyz"); got != http.StatusOK {
		t.Errorf("readyz after swap = %d", got)
	}
	if resp, _ := postJSON(t, s.URL+"/v1/check-pair", map[string]string{"a": "2011-01-01", "b": "2011/01/01"}); resp.StatusCode != http.StatusOK {
		t.Errorf("check-pair after swap = %d", resp.StatusCode)
	}

	if err := svc.Swap(nil, nil); err == nil {
		t.Error("Swap accepted a nil detector")
	}
}

func TestConcurrencyLimitSheds429(t *testing.T) {
	det, sem := trainedModel(t)
	svc := New(det, sem)
	svc.MaxInFlight = 1
	svc.RequestTimeout = 30 * time.Second
	s := httptest.NewServer(svc.Handler())
	defer s.Close()

	// Hold the single slot with a request whose body never finishes.
	pr, pw := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(s.URL+"/v1/check-pair", "application/json", pr)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	if _, err := pw.Write([]byte(`{"a":"x",`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the partial body reach the handler

	resp, err := http.Get(s.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After")
	}

	// Probes bypass the limiter even under full load.
	resp, err = http.Get(s.URL + "/v1/livez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("livez under load: status %d", resp.StatusCode)
	}

	// Finish the held request and confirm the slot frees up.
	if _, err := pw.Write([]byte(`"b":"y"}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(s.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d", resp.StatusCode)
	}
}

func TestRequestTimeoutReturns504(t *testing.T) {
	det, sem := trainedModel(t)
	svc := New(det, sem)
	svc.RequestTimeout = 100 * time.Millisecond
	s := httptest.NewServer(svc.Handler())
	defer s.Close()

	// A slow-loris body: one byte every 50ms keeps the handler blocked in
	// Decode well past the 100ms deadline, while still finishing the
	// client's body write in bounded time.
	body := &faultinject.SlowReader{
		R:     strings.NewReader(`{"a":"2011-01-01","b":"2011/01/01"}`),
		Delay: 50 * time.Millisecond,
		Chunk: 1,
	}
	resp, err := http.Post(s.URL+"/v1/check-pair", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

func TestAdminReload(t *testing.T) {
	det, sem := trainedModel(t)

	// Without a hook the endpoint is explicitly unimplemented.
	svc := New(det, sem)
	s := httptest.NewServer(svc.Handler())
	resp, _ := postJSON(t, s.URL+"/v1/admin/reload", nil)
	s.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without hook: status %d, want 501", resp.StatusCode)
	}

	// With a hook the model is swapped and summarized.
	reloaded := roundtrip(t, det)
	svc = New(det, sem)
	svc.Reload = func() (*core.Detector, *semantic.Model, ModelInfo, error) {
		return reloaded, nil, ModelInfo{Source: "test"}, nil
	}
	s = httptest.NewServer(svc.Handler())
	defer s.Close()
	resp, body := postJSON(t, s.URL+"/v1/admin/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d (%s)", resp.StatusCode, body)
	}
	var h struct {
		Status    string `json:"status"`
		Languages int    `json:"languages"`
		Semantic  bool   `json:"semantic"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "reloaded" || h.Languages == 0 || h.Semantic {
		t.Errorf("reload summary = %+v", h)
	}
	if svc.snapshot().det != reloaded {
		t.Error("reload did not swap the detector")
	}

	// A failing hook keeps the old model.
	svc.Reload = func() (*core.Detector, *semantic.Model, ModelInfo, error) {
		return nil, nil, ModelInfo{}, fmt.Errorf("disk on fire")
	}
	resp, _ = postJSON(t, s.URL+"/v1/admin/reload", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("failing reload: status %d, want 500", resp.StatusCode)
	}
	if svc.snapshot().det != reloaded {
		t.Error("failing reload replaced the model")
	}
}

// TestCorruptedModelNeverServes feeds the model bytes through every
// fault-injection reader and proves core.Load rejects each with
// ErrCorruptModel — a corrupted file can never become the serving model.
func TestCorruptedModelNeverServes(t *testing.T) {
	det, _ := trainedModel(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	faults := map[string]io.Reader{
		"truncated-half":    faultinject.Truncated(bytes.NewReader(valid), int64(len(valid)/2)),
		"truncated-1-short": faultinject.Truncated(bytes.NewReader(valid), int64(len(valid)-1)),
		"flaky-io":          &faultinject.FlakyReader{R: bytes.NewReader(valid), After: int64(len(valid) / 3)},
		"bit-flip-payload":  &faultinject.FlipReader{R: bytes.NewReader(valid), Offset: int64(len(valid) / 2), Mask: 0x40},
		"bit-flip-trailer":  &faultinject.FlipReader{R: bytes.NewReader(valid), Offset: int64(len(valid) - 1), Mask: 0x01},
	}
	for name, r := range faults {
		if _, err := core.Load(r); !errors.Is(err, core.ErrCorruptModel) {
			t.Errorf("%s: Load returned %v, want ErrCorruptModel", name, err)
		}
	}

	// The intact stream still loads and can be swapped in.
	back, err := core.Load(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if err := New(det, nil).Swap(back, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHotReloadUnderLoad drives 64 concurrent clients through check-pair
// and check-column while the model is swapped repeatedly. Every request
// must complete successfully against either the old or the new model; run
// with -race to prove the swap is data-race free.
func TestHotReloadUnderLoad(t *testing.T) {
	det, sem := trainedModel(t)
	detB := roundtrip(t, det)
	svc := New(det, sem)
	s := httptest.NewServer(svc.Handler())
	defer s.Close()

	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan string, clients*8)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var resp *http.Response
				var body []byte
				if c%2 == 0 {
					resp, body = postJSON(t, s.URL+"/v1/check-pair",
						map[string]string{"a": "2011-01-01", "b": "2011/01/01"})
				} else {
					resp, body = postJSON(t, s.URL+"/v1/check-column",
						map[string]any{"values": []string{"2011-01-01", "2012-05-14", "2011/06/20"}})
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("client %d req %d: status %d (%s)", c, i, resp.StatusCode, body)
					return
				}
			}
		}(c)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		models := [2]*core.Detector{det, detB}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := svc.Swap(models[i%2], sem); err != nil {
				errs <- "swap: " + err.Error()
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
