package service

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

var batchBenchOut = flag.String("service.batchout", "",
	"write the batch job end-to-end latency result (BENCH_batch.json) to this path")

// batchBench is the BENCH_batch.json payload: one whole-spreadsheet audit
// job measured submit-to-done through the full HTTP + durable-queue stack.
type batchBench struct {
	Benchmark     string  `json:"benchmark"`
	Columns       int     `json:"columns"`
	Values        int     `json:"values"`
	Findings      int     `json:"findings"`
	Workers       int     `json:"workers"`
	NumCPU        int     `json:"num_cpu"`
	E2EMillis     float64 `json:"e2e_ms"`
	ColumnsPerSec float64 `json:"columns_per_sec"`
}

// TestBatchSmoke submits one multi-column audit job, polls it to
// completion, verifies the jobs_* metric families after real traffic, and
// writes the end-to-end job latency to -service.batchout (CI's
// batch-smoke job sets it; plain `go test` skips).
func TestBatchSmoke(t *testing.T) {
	if *batchBenchOut == "" {
		t.Skip("batch smoke disabled; set -service.batchout to enable")
	}
	ts, _ := newJobsServer(t, nil)
	table := batchTable(64)
	values := 0
	for _, vs := range table {
		values += len(vs)
	}

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"columns": table})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var submitted jobStatus
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	done := waitJobHTTP(t, ts.URL, submitted.ID, "done")
	e2e := time.Since(start)

	// One page sanity-checks the results endpoint under the benchmark.
	resp, body = getBody(t, fmt.Sprintf("%s/v1/jobs/%s/results?page_size=%d",
		ts.URL, submitted.ID, maxResultsPageSize))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status %d: %s", resp.StatusCode, body)
	}

	resp, body = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, fam := range []string{
		"autodetect_jobs_submitted_total",
		"autodetect_jobs_completed_total",
		"autodetect_jobs_queue_depth",
		"autodetect_jobs_running",
		"autodetect_job_seconds",
		"autodetect_job_column_seconds",
	} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing family %q after a batch job", fam)
		}
	}

	out := batchBench{
		Benchmark:     "batch_job_end_to_end",
		Columns:       done.ColumnsTotal,
		Values:        values,
		Findings:      done.FindingsTotal,
		Workers:       2,
		NumCPU:        runtime.NumCPU(),
		E2EMillis:     float64(e2e) / float64(time.Millisecond),
		ColumnsPerSec: float64(done.ColumnsTotal) / e2e.Seconds(),
	}
	t.Logf("job %s: %d columns, %d findings in %.1fms (%.0f columns/s)",
		submitted.ID, out.Columns, out.Findings, out.E2EMillis, out.ColumnsPerSec)
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(*batchBenchOut); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(*batchBenchOut, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
