package service

// Batch audit job endpoints, mounted when Server.Jobs is configured:
//
//	POST   /v1/jobs               submit a whole-table audit (202 + job id)
//	GET    /v1/jobs               list jobs in submission order
//	GET    /v1/jobs/{id}          poll status and progress
//	GET    /v1/jobs/{id}/results  page through findings (?page=&page_size=)
//	DELETE /v1/jobs/{id}          cancel an in-flight job / delete a finished one
//
// Backpressure reuses the resilience conventions: a full queue answers
// 429 with a Retry-After hint, exactly like the in-flight limiter.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/envelope"
	"repro/internal/jobs"
	"repro/internal/resilience"
	"repro/internal/semantic"
)

const (
	defaultResultsPageSize = 100
	maxResultsPageSize     = 1000
)

// jobSubmitRequest is the body of POST /v1/jobs. Exactly one of columns
// (the /v1/check-table shape, audited asynchronously) and database (a
// whole-database audit streamed from the DSN) is given.
type jobSubmitRequest struct {
	Columns map[string][]string `json:"columns"`
	// Hints maps column names onto semantic-domain names (email, phone,
	// zip, ...) to run format checks alongside the detectors. Database
	// submissions derive hints from schema metadata automatically.
	Hints         map[string]string `json:"hints,omitempty"`
	Database      *jobDBRequest     `json:"database,omitempty"`
	MinConfidence float64           `json:"min_confidence"`
}

// jobDBRequest names the database a whole-database audit streams from.
type jobDBRequest struct {
	// Driver is the database/sql driver name; empty selects the in-tree
	// in-memory driver.
	Driver string `json:"driver,omitempty"`
	DSN    string `json:"dsn"`
	// Tables optionally restricts the audit.
	Tables []string `json:"tables,omitempty"`
}

// jobStatus is the wire form of a job's state (findings ride on the
// results endpoint, not here, so polling stays cheap).
type jobStatus struct {
	ID            string  `json:"id"`
	Status        string  `json:"status"`
	ColumnsTotal  int     `json:"columns_total"`
	ColumnsDone   int     `json:"columns_done"`
	FindingsTotal int     `json:"findings_total"`
	Progress      float64 `json:"progress"`
	Resumes       int     `json:"resumes,omitempty"`
	Error         string  `json:"error,omitempty"`
	SubmittedUnix int64   `json:"submitted_unix,omitempty"`
	StartedUnix   int64   `json:"started_unix,omitempty"`
	FinishedUnix  int64   `json:"finished_unix,omitempty"`
}

func jobStatusFrom(st *jobs.State) jobStatus {
	js := jobStatus{
		ID:            st.ID,
		Status:        string(st.Status),
		ColumnsTotal:  st.ColumnsTotal,
		ColumnsDone:   st.ColumnsDone,
		FindingsTotal: st.FindingsTotal(),
		Resumes:       st.Resumes,
		Error:         st.Error,
		SubmittedUnix: st.SubmittedUnix,
		StartedUnix:   st.StartedUnix,
		FinishedUnix:  st.FinishedUnix,
	}
	if st.ColumnsTotal > 0 {
		js.Progress = float64(st.ColumnsDone) / float64(st.ColumnsTotal)
	}
	return js
}

// jobFinding is one paged finding with its column attribution.
type jobFinding struct {
	Column string `json:"column"`
	Finding
}

// jobResultsResponse is one page of findings. Findings are ordered by
// column name (the deterministic audit order), then in detector order
// within a column; the order is stable across polls and restarts, so
// pages never shift under a paginating client.
type jobResultsResponse struct {
	ID            string       `json:"id"`
	Status        string       `json:"status"`
	Complete      bool         `json:"complete"`
	Page          int          `json:"page"`
	PageSize      int          `json:"page_size"`
	TotalFindings int          `json:"total_findings"`
	Findings      []jobFinding `json:"findings"`
	NextPage      *int         `json:"next_page,omitempty"`
}

// jobsEnabled answers 501 when the batch subsystem is not configured.
func (s *Server) jobsEnabled(w http.ResponseWriter, r *http.Request) bool {
	if s.Jobs == nil {
		writeErr(w, r, http.StatusNotImplemented,
			"batch jobs disabled (start the server with a jobs directory)")
		return false
	}
	return true
}

// writeJobErr maps jobs-package errors onto the API's status codes.
func writeJobErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeErr(w, r, http.StatusNotFound, "no such job")
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(resilience.DefaultRetryAfterSeconds))
		writeErr(w, r, http.StatusTooManyRequests, "job queue full, retry later")
	case errors.Is(err, jobs.ErrClosed):
		writeErr(w, r, http.StatusServiceUnavailable, "server draining, not accepting jobs")
	case errors.Is(err, jobs.ErrTooLarge):
		writeErr(w, r, http.StatusRequestEntityTooLarge, err.Error())
	case errors.Is(err, jobs.ErrDatabase):
		writeErr(w, r, http.StatusBadRequest, err.Error())
	case errors.Is(err, envelope.ErrIntegrity):
		writeErr(w, r, http.StatusInternalServerError, "job record corrupt on disk")
	default:
		writeErr(w, r, http.StatusInternalServerError, err.Error())
	}
}

// handleJobs serves POST (submit) and GET (list) on /v1/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		s.handleJobList(w, r)
	default:
		writeErr(w, r, http.StatusMethodNotAllowed, "POST or GET only")
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.ready(w, r) == nil {
		return
	}
	var req jobSubmitRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	for col, hint := range req.Hints {
		if !semantic.KnownDomain(hint) {
			writeErr(w, r, http.StatusBadRequest,
				fmt.Sprintf("unknown domain hint %q for column %q", hint, col))
			return
		}
	}
	if req.Database != nil {
		s.handleJobSubmitDB(w, r, &req)
		return
	}
	if len(req.Columns) == 0 {
		writeErr(w, r, http.StatusBadRequest, "columns is empty")
		return
	}
	total := 0
	for _, vs := range req.Columns {
		total += len(vs)
	}
	if s.MaxTableValues > 0 && total > s.MaxTableValues {
		writeErr(w, r, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("table has %d values, at most %d per job", total, s.MaxTableValues))
		return
	}
	st, err := s.Jobs.SubmitTable(r.Context(), req.Columns, req.Hints, req.MinConfidence)
	if err != nil {
		writeJobErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobStatusFrom(st))
}

// handleJobSubmitDB admits a whole-database audit. The capability is off
// by default — a DSN reaches out of the process, so operators opt in with
// -db-audit — and the submission introspects the database synchronously,
// failing fast on unreachable DSNs or bad table filters.
func (s *Server) handleJobSubmitDB(w http.ResponseWriter, r *http.Request, req *jobSubmitRequest) {
	if !s.AllowDBAudit {
		writeErr(w, r, http.StatusForbidden,
			"database audits disabled (start the server with -db-audit)")
		return
	}
	if len(req.Columns) > 0 {
		writeErr(w, r, http.StatusBadRequest, "columns and database are mutually exclusive")
		return
	}
	if len(req.Hints) > 0 {
		writeErr(w, r, http.StatusBadRequest, "database submissions derive hints from the schema; hints is not accepted")
		return
	}
	if req.Database.DSN == "" {
		writeErr(w, r, http.StatusBadRequest, "database.dsn is empty")
		return
	}
	st, err := s.Jobs.SubmitDB(r.Context(), jobs.DBRequest{
		Driver:        req.Database.Driver,
		DSN:           req.Database.DSN,
		Tables:        req.Database.Tables,
		MinConfidence: req.MinConfidence,
		MaxValues:     s.MaxTableValues,
	})
	if err != nil {
		writeJobErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobStatusFrom(st))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	states, err := s.Jobs.List()
	if err != nil {
		writeJobErr(w, r, err)
		return
	}
	out := struct {
		Jobs []jobStatus `json:"jobs"`
	}{Jobs: make([]jobStatus, 0, len(states))}
	for _, st := range states {
		out.Jobs = append(out.Jobs, jobStatusFrom(st))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleJob serves GET (status) and DELETE (cancel / delete) on
// /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		st, err := s.Jobs.Get(id)
		if err != nil {
			writeJobErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, jobStatusFrom(st))
	case http.MethodDelete:
		st, err := s.Jobs.Cancel(id)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, jobStatusFrom(st))
		case errors.Is(err, jobs.ErrTerminal):
			// The job already finished: DELETE removes its record instead.
			if err := s.Jobs.Delete(id); err != nil {
				writeJobErr(w, r, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "deleted"})
		default:
			writeJobErr(w, r, err)
		}
	default:
		writeErr(w, r, http.StatusMethodNotAllowed, "GET or DELETE only")
	}
}

// handleJobResults serves one page of findings on /v1/jobs/{id}/results.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	if r.Method != http.MethodGet {
		writeErr(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	page, ok := queryInt(w, r, "page", 0)
	if !ok {
		return
	}
	pageSize, ok := queryInt(w, r, "page_size", defaultResultsPageSize)
	if !ok {
		return
	}
	if pageSize <= 0 {
		pageSize = defaultResultsPageSize
	}
	if pageSize > maxResultsPageSize {
		pageSize = maxResultsPageSize
	}
	st, err := s.Jobs.Get(r.PathValue("id"))
	if err != nil {
		writeJobErr(w, r, err)
		return
	}
	total := st.FindingsTotal()
	start := page * pageSize
	resp := jobResultsResponse{
		ID:            st.ID,
		Status:        string(st.Status),
		Complete:      st.Status == jobs.StatusDone,
		Page:          page,
		PageSize:      pageSize,
		TotalFindings: total,
		Findings:      make([]jobFinding, 0, pageSize),
	}
	// Walk completed columns in audit order, skipping to the page offset
	// without materializing the flattened list.
	skip := start
	for _, cr := range st.Results {
		if len(resp.Findings) == cap(resp.Findings) {
			break
		}
		if skip >= len(cr.Findings) {
			skip -= len(cr.Findings)
			continue
		}
		for _, f := range cr.Findings[skip:] {
			resp.Findings = append(resp.Findings, jobFinding{Column: cr.Column, Finding: f})
			if len(resp.Findings) == cap(resp.Findings) {
				break
			}
		}
		skip = 0
	}
	if start+len(resp.Findings) < total {
		next := page + 1
		resp.NextPage = &next
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryInt parses a non-negative integer query parameter, answering 400
// on garbage.
func queryInt(w http.ResponseWriter, r *http.Request, key string, def int) (int, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		writeErr(w, r, http.StatusBadRequest, fmt.Sprintf("bad %s: want a non-negative integer", key))
		return 0, false
	}
	return v, true
}
