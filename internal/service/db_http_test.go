package service

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/dbsource"
	"repro/internal/jobs"
	"repro/internal/observe"
)

var dbAuditBenchOut = flag.String("service.dbauditout", "",
	"write the whole-database audit smoke result (BENCH_dbaudit.json) to this path")

// seedServiceDB registers an in-memory database under mem://<name> with
// the dirty generator's columns spread over three tables plus an email
// column carrying planted format errors.
func seedServiceDB(t *testing.T, name string, cols int) int {
	t.Helper()
	c := corpus.Generate(corpus.EntXLSProfile(), cols, 42)
	db := dbsource.NewMemDB()
	tables := map[string][]dbsource.MemCol{}
	for i, col := range c.Columns {
		vals := make([]any, len(col.Values))
		for j, v := range col.Values {
			vals[j] = v
		}
		tbl := fmt.Sprintf("t%d", i%3)
		tables[tbl] = append(tables[tbl], dbsource.MemCol{
			Name:   fmt.Sprintf("%03d_%s", i, strings.ReplaceAll(col.Name, ".", "_")),
			Type:   "TEXT",
			Values: vals,
		})
	}
	tables["t0"] = append(tables["t0"], dbsource.MemCol{
		Name: "email", Type: "TEXT",
		Values: []any{"a@x.com", "b@x.com", "c@x.com", "d@x.com", "e@x.com",
			"not an email", "f@x.com", "g@x.com", "h@x.com", "i@x.com", "j@x.com"},
	})
	total := 0
	for tbl, mc := range tables {
		db.AddTable(tbl, mc...)
		total += len(mc)
	}
	dbsource.Register(name, db)
	return total
}

func newDBJobsServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	return newJobsServer(t, func(s *Server, _ *jobs.Config) {
		s.AllowDBAudit = true
	})
}

func TestJobSubmitDBDisabledHTTP(t *testing.T) {
	ts, _ := newJobsServer(t, nil) // AllowDBAudit left false
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"database": map[string]any{"dsn": "mem://whatever"},
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled DB audit -> %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "-db-audit") {
		t.Fatalf("error should name the opt-in flag: %s", body)
	}
}

func TestJobSubmitDBValidationHTTP(t *testing.T) {
	seedServiceDB(t, "svc-validate", 3)
	ts, svc := newDBJobsServer(t)

	// Columns and database are mutually exclusive.
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"columns":  map[string][]string{"a": {"x"}},
		"database": map[string]any{"dsn": "mem://svc-validate"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("columns+database -> %d: %s", resp.StatusCode, body)
	}

	// Explicit hints are rejected: database submissions derive them.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"database": map[string]any{"dsn": "mem://svc-validate"},
		"hints":    map[string]string{"t0.email": "email"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("database+hints -> %d: %s", resp.StatusCode, body)
	}

	// Empty DSN and an unknown registry name are both client errors.
	for _, dsn := range []string{"", "mem://svc-no-such-db"} {
		resp, body = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
			"database": map[string]any{"dsn": dsn},
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("dsn %q -> %d: %s", dsn, resp.StatusCode, body)
		}
	}

	// The shared MaxTableValues cap covers whole-database audits too.
	svc.MaxTableValues = 5
	resp, body = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"database": map[string]any{"dsn": "mem://svc-validate"},
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized database -> %d: %s", resp.StatusCode, body)
	}
}

// TestJobDBLifecycleHTTP drives a whole-database audit end to end over
// HTTP: submit by DSN, poll to done, and check that findings carry
// table.column provenance and the db_* metric families went live.
func TestJobDBLifecycleHTTP(t *testing.T) {
	columns := seedServiceDB(t, "svc-lifecycle", 6)
	ts, _ := newDBJobsServer(t)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"database": map[string]any{"dsn": "mem://svc-lifecycle"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", resp.StatusCode, body)
	}
	var submitted jobStatus
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.ColumnsTotal != columns {
		t.Fatalf("columns_total = %d, want %d", submitted.ColumnsTotal, columns)
	}
	done := waitJobHTTP(t, ts.URL, submitted.ID, "done")
	if done.FindingsTotal == 0 {
		t.Fatal("dirty database produced no findings")
	}

	resp, body = getBody(t, fmt.Sprintf("%s/v1/jobs/%s/results?page_size=%d",
		ts.URL, submitted.ID, maxResultsPageSize))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results -> %d: %s", resp.StatusCode, body)
	}
	var pr jobResultsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	sawDomain := false
	for _, f := range pr.Findings {
		if f.Finding.Source != dbsource.DriverName || f.Finding.Table == "" {
			t.Fatalf("finding missing provenance: %+v", f)
		}
		if !strings.Contains(f.Column, ".") {
			t.Fatalf("column %q is not table-qualified", f.Column)
		}
		if f.Column == "t0.email" && f.Finding.Kind == "domain" {
			sawDomain = true
		}
	}
	if !sawDomain {
		t.Error("expected a schema-hinted domain finding on t0.email")
	}

	resp, body = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics -> %d", resp.StatusCode)
	}
	for _, fam := range []string{
		"autodetect_db_tables_total",
		"autodetect_db_columns_total",
		"autodetect_db_rows_total",
		"autodetect_db_pages_total",
		"autodetect_db_page_seconds",
	} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing family %q after a database audit", fam)
		}
	}
}

// dbAuditBench is the BENCH_dbaudit.json payload: one whole-database
// audit measured submit-to-done through HTTP plus the keyset page-read
// latency distribution observed by the streaming layer.
type dbAuditBench struct {
	Benchmark     string  `json:"benchmark"`
	Tables        int     `json:"tables"`
	Columns       int     `json:"columns"`
	Findings      int     `json:"findings"`
	NumCPU        int     `json:"num_cpu"`
	E2EMillis     float64 `json:"e2e_ms"`
	ColumnsPerSec float64 `json:"columns_per_sec"`
	PageP50Millis float64 `json:"page_p50_ms"`
	PageP99Millis float64 `json:"page_p99_ms"`
	Pages         uint64  `json:"pages"`
}

// TestDBAuditSmoke is CI's db-audit-smoke probe: a whole-database audit
// through the full HTTP + durable-queue + dbsource stack, publishing
// end-to-end latency and page-read percentiles (skips unless
// -service.dbauditout is set).
func TestDBAuditSmoke(t *testing.T) {
	if *dbAuditBenchOut == "" {
		t.Skip("db audit smoke disabled; set -service.dbauditout to enable")
	}
	columns := seedServiceDB(t, "svc-smoke", 48)
	ts, svc := newDBJobsServer(t)

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"database": map[string]any{"dsn": "mem://svc-smoke"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", resp.StatusCode, body)
	}
	var submitted jobStatus
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	done := waitJobHTTP(t, ts.URL, submitted.ID, "done")
	e2e := time.Since(start)

	// Registration is idempotent, so this returns the same histogram the
	// streaming layer observed page reads into.
	pageDur := svc.Registry().Histogram("autodetect_db_page_seconds",
		"Latency of one keyset page read.", observe.DefBuckets)
	if pageDur.Count() == 0 {
		t.Fatal("page-latency histogram saw no observations")
	}

	out := dbAuditBench{
		Benchmark:     "db_audit_end_to_end",
		Tables:        3,
		Columns:       columns,
		Findings:      done.FindingsTotal,
		NumCPU:        runtime.NumCPU(),
		E2EMillis:     float64(e2e) / float64(time.Millisecond),
		ColumnsPerSec: float64(done.ColumnsTotal) / e2e.Seconds(),
		PageP50Millis: pageDur.Quantile(0.5) * 1000,
		PageP99Millis: pageDur.Quantile(0.99) * 1000,
		Pages:         pageDur.Count(),
	}
	t.Logf("db job %s: %d columns, %d findings in %.1fms (%d pages, p50 %.2fms p99 %.2fms)",
		submitted.ID, out.Columns, out.Findings, out.E2EMillis, out.Pages,
		out.PageP50Millis, out.PageP99Millis)
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(*dbAuditBenchOut); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(*dbAuditBenchOut, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
