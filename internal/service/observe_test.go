package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/observe"
)

// getText fetches url and returns status plus body.
func getText(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint drives one detection request and then scrapes
// /metrics, asserting every advertised family from the service layer is
// present: readiness/model gauges, HTTP request counters with bounded
// route labels, span histograms, and the hot-path counter funcs.
func TestMetricsEndpoint(t *testing.T) {
	det, sem := trainedModel(t)
	svc := New(det, sem)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL+"/v1/check-column", map[string]any{
		"values": []string{"2011-01-01", "2012-05-14", "2013/11/30"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check-column status = %d", resp.StatusCode)
	}

	status, body := getText(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	for _, want := range []string{
		"autodetect_model_loaded 1",
		"autodetect_model_bytes ",
		"autodetect_model_languages ",
		"autodetect_model_swaps_total 0",
		`autodetect_http_requests_total{route="/v1/check-column",code="200"} 1`,
		`autodetect_span_seconds_count{span="check_column"} 1`,
		`autodetect_span_seconds_count{span="check_column/detect_pattern"} 1`,
		"autodetect_detect_values_total",
		"autodetect_detect_pairs_total",
		"autodetect_detect_language_pairs_total",
		"autodetect_sketch_estimate_total",
		"# TYPE autodetect_http_request_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Unknown paths must collapse into the "other" route label.
	if st, _ := getText(t, ts.URL+"/no/such/route"); st != http.StatusNotFound {
		t.Fatalf("unknown route status = %d", st)
	}
	_, body = getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, `autodetect_http_requests_total{route="other",code="404"} 1`) {
		t.Error("unknown route was not collapsed into the \"other\" label")
	}
}

// TestSwapUpdatesMetrics checks the model-swap counter and gauge resync.
func TestSwapUpdatesMetrics(t *testing.T) {
	det, sem := trainedModel(t)
	svc := New(det, sem)
	reg := svc.Registry()

	if got := reg.Counter("autodetect_model_swaps_total", "").Value(); got != 0 {
		t.Fatalf("swaps before = %v, want 0", got)
	}
	if err := svc.Swap(det, sem); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("autodetect_model_swaps_total", "").Value(); got != 1 {
		t.Errorf("swaps after = %v, want 1", got)
	}
	if got := reg.Gauge("autodetect_model_loaded", "").Value(); got != 1 {
		t.Errorf("model_loaded = %v, want 1", got)
	}
	if got := reg.Gauge("autodetect_model_bytes", "").Value(); got <= 0 {
		t.Errorf("model_bytes = %v, want > 0", got)
	}
}

// TestPprofGating pins the security posture: /debug/pprof is absent by
// default and only mounted when EnablePprof is set.
func TestPprofGating(t *testing.T) {
	det, sem := trainedModel(t)

	off := httptest.NewServer(New(det, sem).Handler())
	defer off.Close()
	if st, _ := getText(t, off.URL+"/debug/pprof/"); st != http.StatusNotFound {
		t.Errorf("pprof disabled: status = %d, want 404", st)
	}

	onSvc := New(det, sem)
	onSvc.EnablePprof = true
	on := httptest.NewServer(onSvc.Handler())
	defer on.Close()
	if st, _ := getText(t, on.URL+"/debug/pprof/"); st != http.StatusOK {
		t.Errorf("pprof enabled: status = %d, want 200", st)
	}
}

// TestSharedRegistry checks that a caller-supplied registry is adopted,
// so the daemon can co-locate pipeline metrics with serving metrics.
func TestSharedRegistry(t *testing.T) {
	det, sem := trainedModel(t)
	reg := observe.NewRegistry()
	svc := New(det, sem)
	svc.Metrics = reg
	if svc.Registry() != reg {
		t.Fatal("server did not adopt the provided registry")
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	reg.Counter("autodetect_extra_total", "Caller-registered series.").Add(7)
	_, body := getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, "autodetect_extra_total 7") {
		t.Error("caller-registered counter missing from /metrics")
	}
}
