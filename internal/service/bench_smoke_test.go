package service

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

var servingBenchOut = flag.String("service.benchout", "",
	"write the serving latency smoke result (BENCH_serving.json) to this path")

// servingBench is the BENCH_serving.json payload.
type servingBench struct {
	Benchmark string  `json:"benchmark"`
	Requests  int     `json:"requests"`
	NumCPU    int     `json:"num_cpu"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`
}

func quantileMillis(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// TestServingSmoke measures end-to-end /v1/check-column latency through
// the full middleware chain, asserts the key metric families are being
// exported, and writes p50/p99 to -service.benchout (CI's serving-smoke
// job sets it; plain `go test` skips).
func TestServingSmoke(t *testing.T) {
	if *servingBenchOut == "" {
		t.Skip("serving smoke disabled; set -service.benchout to enable")
	}
	det, sem := trainedModel(t)
	svc := New(det, sem)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	payload := map[string]any{"values": []string{
		"2011-01-01", "2012-05-14", "2013-11-30", "2014-02-02",
		"2015-08-19", "2016-03-03", "2017/06/20", "2018-12-25",
	}}
	const requests = 200
	lat := make([]time.Duration, 0, requests)
	for i := 0; i < requests; i++ {
		start := time.Now()
		resp, _ := postJSON(t, ts.URL+"/v1/check-column", payload)
		lat = append(lat, time.Since(start))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	// The smoke doubles as a metrics regression gate: the families the
	// dashboards are built on must exist after real traffic.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, fam := range []string{
		"autodetect_http_requests_total",
		"autodetect_http_request_seconds",
		"autodetect_span_seconds",
		"autodetect_model_loaded 1",
		"autodetect_detect_pairs_total",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("/metrics missing family %q after traffic", fam)
		}
	}

	out := servingBench{
		Benchmark: "serving_check_column_latency",
		Requests:  requests,
		NumCPU:    runtime.NumCPU(),
		P50Millis: quantileMillis(lat, 0.50),
		P99Millis: quantileMillis(lat, 0.99),
		MaxMillis: quantileMillis(lat, 1.0),
	}
	t.Logf("p50=%.2fms p99=%.2fms max=%.2fms over %d requests",
		out.P50Millis, out.P99Millis, out.MaxMillis, requests)
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(*servingBenchOut); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(*servingBenchOut, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
