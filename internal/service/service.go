// Package service exposes a trained Auto-Detect model over HTTP — the
// "spell-checker for data" deployment the paper targets (error detection
// as an always-on background service; Appendix G discusses the background
// execution mode). The API is JSON over these endpoints:
//
//	GET  /v1/health        → model summary
//	GET  /v1/livez         → liveness probe (process is up)
//	GET  /v1/readyz        → readiness probe (a model is loaded)
//	POST /v1/check-column  → findings for one column
//	POST /v1/check-table   → findings for every column of a table
//	POST /v1/check-pair    → verdict for a single value pair
//	POST /v1/admin/reload  → hot-swap the model (when a Reload hook is set)
//
// When the Jobs field carries a batch manager, the asynchronous audit API
// is mounted too (see jobs_http.go): POST /v1/jobs submits a whole-table
// audit that runs in the background, survives restarts, and pages its
// findings through GET /v1/jobs/{id}/results.
//
// Every request flows through the internal/resilience hardening chain:
// request-ID injection, panic recovery, load shedding (429 + Retry-After
// past MaxInFlight), a per-request deadline, and a body-size cap. The
// probe endpoints bypass the limiter and deadline so orchestrators can
// still see a live process under overload.
//
// The model is held behind an atomic pointer: reloads swap the detector
// and semantic model together, and every request snapshots the pair once,
// so in-flight requests always score against one consistent model and
// never observe a partial swap.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"mime"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/observe"
	"repro/internal/resilience"
	"repro/internal/semantic"
)

// ModelInfo records where the served model came from — file path reload,
// in-process training, or a registry pull — so health responses, reload
// logs, and the model_version gauge can say which version a replica runs.
// The zero value means "provenance unknown" and is always valid.
type ModelInfo struct {
	// Version is the registry version number (0 when not registry-sourced).
	Version int `json:"version,omitempty"`
	// Source names the provenance: "file", "train-dir", "synthetic",
	// "registry", ...
	Source string `json:"source,omitempty"`
	// SHA256 is the hex digest of the serialized model bytes, when known.
	SHA256 string `json:"sha256,omitempty"`
	// PublishedUnixMs is when this model was published/built, when known;
	// the model_age_seconds gauge derives from it.
	PublishedUnixMs int64 `json:"published_unix_ms,omitempty"`
}

// model pairs the pattern detector with the optional value-level semantic
// model so both swap atomically on reload, plus the provenance of the pair.
type model struct {
	det    *core.Detector
	sem    *semantic.Model
	info   ModelInfo
	loaded time.Time
}

// Server serves error-detection requests from a trained detector and an
// optional value-level semantic model. Configure the exported limits
// before calling Handler; they are read once when the handler is built.
type Server struct {
	cur atomic.Pointer[model]
	obsState

	// MaxValues bounds the accepted column length (default 10000).
	MaxValues int
	// MaxTableValues bounds the total cell count of a /v1/check-table
	// request or a batch job submission (default 100000; <= 0 disables).
	MaxTableValues int
	// TableWorkers bounds the per-request column-scoring pool used by
	// /v1/check-table (default 4; <= 1 scores sequentially). Results are
	// identical to a sequential pass — columns are independent.
	TableWorkers int
	// MaxBodyBytes caps request bodies (default 8 MiB; <= 0 disables).
	MaxBodyBytes int64
	// MaxInFlight bounds concurrent requests; excess requests receive
	// 429 with Retry-After (default 256; <= 0 disables). It is the upper
	// bound of the tiered AIMD admission controller: under overload the
	// effective limit adapts downward toward LatencyTarget, shedding
	// background traffic (jobs) before interactive (check-*), and never
	// shedding admin calls.
	MaxInFlight int
	// LatencyTarget is the latency the admission controller adapts its
	// concurrency limit toward (default 250ms).
	LatencyTarget time.Duration
	// RequestTimeout bounds each request's wall-clock time (default 30s;
	// <= 0 disables). An inbound X-Deadline-Ms budget below it tightens
	// the bound further (deadline propagation).
	RequestTimeout time.Duration
	// DeadlineFloor, when > 0, fast-fails interactive check requests with
	// 504 when their propagated deadline budget is already below it —
	// doomed work is rejected before it starts (default 0: disabled).
	DeadlineFloor time.Duration
	// MaxModelStaleness, when > 0, makes /v1/readyz report
	// "degraded" (still 200 — the replica serves, staleness is a warning,
	// not an outage) once the served model's age exceeds it.
	MaxModelStaleness time.Duration
	// DegradedCheck, when set, contributes extra degradation reasons to
	// /v1/readyz (e.g. "registry_breaker_open" from the daemon's puller
	// breaker). Empty means healthy.
	DegradedCheck func() []string
	// Reload, when set, is invoked by POST /v1/admin/reload (and by the
	// daemon's SIGHUP handler) to produce a replacement model plus its
	// provenance. A nil hook makes the endpoint answer 501.
	Reload func() (*core.Detector, *semantic.Model, ModelInfo, error)
	// Logf receives panic reports and reload outcomes (nil discards).
	// Deprecated in favour of Logger; kept for callers that only have a
	// printf-shaped sink.
	Logf func(format string, args ...any)
	// Logger, when set, receives structured per-request access logs and
	// lifecycle events with request-ID correlation. It takes precedence
	// over Logf for panic/reload reporting.
	Logger *slog.Logger
	// Metrics is the registry behind GET /metrics. Read once at the first
	// Handler/Swap call; nil gets a private registry.
	Metrics *observe.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (outside the
	// load shedder, inside recovery). Off by default: profiles expose
	// memory contents.
	EnablePprof bool
	// Tracer, when set, opens a per-request server span in its flight
	// recorder, joins inbound traceparent headers, and stamps trace_id
	// into logs, exemplars and the X-Trace-Id response header. Nil
	// disables tracing entirely.
	Tracer *observe.Tracer
	// EnableTraceDebug mounts the flight-recorder viewer at GET
	// /debug/traces (requires Tracer). Off by default; disabled debug
	// surfaces answer 404 exactly like unknown paths.
	EnableTraceDebug bool
	// Jobs, when set, mounts the asynchronous batch-audit API under
	// /v1/jobs. Configure it before the first Handler call.
	Jobs *jobs.Manager
	// AllowDBAudit permits whole-database audit submissions (the database
	// variant of POST /v1/jobs). Off by default: a submitted DSN makes
	// the server dial out, so operators opt in explicitly (-db-audit).
	AllowDBAudit bool

	// adm is the tiered admission controller built by Handler; tests reach
	// it to observe the adaptive limit.
	adm *resilience.Admission
}

// New returns a server; sem may be nil to disable value-level checks, and
// det may be nil to start not-ready (readyz answers 503 until Swap).
func New(det *core.Detector, sem *semantic.Model) *Server {
	return NewWithInfo(det, sem, ModelInfo{})
}

// NewWithInfo is New with the initial model's provenance attached, so the
// first /v1/health already reports where the model came from.
func NewWithInfo(det *core.Detector, sem *semantic.Model, info ModelInfo) *Server {
	s := &Server{
		MaxValues:      10000,
		MaxTableValues: 100000,
		TableWorkers:   4,
		MaxBodyBytes:   8 << 20,
		MaxInFlight:    256,
		RequestTimeout: 30 * time.Second,
	}
	if det != nil {
		s.cur.Store(&model{det: det, sem: sem, info: info, loaded: time.Now()})
	}
	return s
}

// Swap atomically replaces the served model. In-flight requests finish
// against whichever model they snapshotted; new requests see the new one.
func (s *Server) Swap(det *core.Detector, sem *semantic.Model) error {
	return s.SwapInfo(det, sem, ModelInfo{})
}

// SwapInfo is Swap with the replacement model's provenance attached; the
// registry puller swaps through here so the version gauge and health
// endpoint track the fleet's served version.
func (s *Server) SwapInfo(det *core.Detector, sem *semantic.Model, info ModelInfo) error {
	if det == nil {
		return errors.New("service: cannot swap in a nil detector")
	}
	s.cur.Store(&model{det: det, sem: sem, info: info, loaded: time.Now()})
	s.observability().swaps.Inc()
	s.syncModelGauges()
	return nil
}

// Info returns the served model's provenance (zero before the first load).
func (s *Server) Info() ModelInfo {
	if m := s.snapshot(); m != nil {
		return m.info
	}
	return ModelInfo{}
}

// snapshot returns the current model, or nil before the first Swap.
func (s *Server) snapshot() *model { return s.cur.Load() }

// Model returns the served (detector, semantic) snapshot, or nils before
// the first load. The batch-job executor snapshots through this hook so a
// whole job scores against one consistent model even across hot swaps.
func (s *Server) Model() (*core.Detector, *semantic.Model) {
	m := s.snapshot()
	if m == nil {
		return nil, nil
	}
	return m.det, m.sem
}

// Finding is one flagged cell. It is the shared internal/audit shape, so
// the synchronous endpoints and the batch-job results page serialize
// findings identically.
type Finding = audit.Finding

// columnRequest is the body of /v1/check-column.
type columnRequest struct {
	Values []string `json:"values"`
	// MinConfidence filters findings (default 0.5).
	MinConfidence float64 `json:"min_confidence"`
}

// columnResponse is the body of /v1/check-column responses.
type columnResponse struct {
	Findings []Finding `json:"findings"`
}

// tableRequest is the body of /v1/check-table.
type tableRequest struct {
	Columns       map[string][]string `json:"columns"`
	MinConfidence float64             `json:"min_confidence"`
}

// tableResponse maps column names to findings.
type tableResponse struct {
	Columns map[string][]Finding `json:"columns"`
}

// pairRequest is the body of /v1/check-pair.
type pairRequest struct {
	A string `json:"a"`
	B string `json:"b"`
}

// pairResponse is the body of /v1/check-pair responses.
type pairResponse struct {
	Incompatible bool    `json:"incompatible"`
	Confidence   float64 `json:"confidence"`
	ByLanguage   []struct {
		LanguageID int     `json:"language_id"`
		NPMI       float64 `json:"npmi"`
		Fires      bool    `json:"fires"`
		Precision  float64 `json:"precision"`
	} `json:"by_language"`
}

// healthResponse is the body of /v1/health and reload responses.
type healthResponse struct {
	Status    string `json:"status"`
	Languages int    `json:"languages"`
	Bytes     int    `json:"bytes"`
	Semantic  bool   `json:"semantic"`
	// Model provenance: registry version, source, and digest of the served
	// model, when known.
	Version int    `json:"version,omitempty"`
	Source  string `json:"source,omitempty"`
	SHA256  string `json:"sha256,omitempty"`
}

// Handler returns the HTTP handler with the hardening chain applied.
func (s *Server) Handler() http.Handler {
	obs := s.observability()

	api := http.NewServeMux()
	api.HandleFunc("/v1/health", s.handleHealth)
	api.HandleFunc("/v1/check-column", s.handleColumn)
	api.HandleFunc("/v1/check-table", s.handleTable)
	api.HandleFunc("/v1/check-pair", s.handlePair)
	api.HandleFunc("/v1/admin/reload", s.handleReload)
	// The batch endpoints are always routed; without a configured manager
	// they answer 501 so clients get a diagnosable error instead of 404.
	api.HandleFunc("/v1/jobs", s.handleJobs)
	api.HandleFunc("/v1/jobs/{id}", s.handleJob)
	api.HandleFunc("/v1/jobs/{id}/results", s.handleJobResults)

	// The flat inflight semaphore is replaced by the tiered AIMD admission
	// controller: one adaptive limit, three priorities, background shed
	// first. Deadline propagation replaces the fixed per-request timeout:
	// an inbound X-Deadline-Ms budget tightens the default, and interactive
	// requests already out of budget are 504ed before any work.
	s.adm = resilience.NewAdmission(resilience.AdmissionConfig{
		MaxConcurrency: s.MaxInFlight,
		Target:         s.LatencyTarget,
		RetryAfter:     resilience.DefaultRetryAfter,
		Tier:           serviceTier,
		Metrics:        obs.reg,
	})
	hardened := resilience.Chain(
		s.adm.Middleware(),
		resilience.DeadlineBudget(s.RequestTimeout, s.deadlineFloor, obs.reg),
		resilience.MaxBytes(s.MaxBodyBytes),
	)(api)

	// Probes and the metrics scrape sit outside the limiter and deadline:
	// an orchestrator must be able to distinguish "alive but shedding
	// load" from "dead", and the scrape that would explain an overload
	// must not itself be shed.
	root := http.NewServeMux()
	root.HandleFunc("/v1/livez", s.handleLivez)
	root.HandleFunc("/v1/readyz", s.handleReadyz)
	root.Handle("/metrics", obs.reg.Handler())
	// pprof and the trace viewer share one gated mount; a disabled
	// surface 404s exactly like an unknown path.
	root.Handle("/debug/", observe.DebugHandler(observe.DebugOptions{
		Pprof:    s.EnablePprof,
		Traces:   s.EnableTraceDebug && s.Tracer != nil,
		Recorder: s.recorder(),
	}))
	root.Handle("/", hardened)

	// Metrics outermost after RequestID and Tracing so 429s, 504s and
	// recovered 500s are all counted and carry trace exemplars; the
	// access log inside Metrics but outside Recover sees the final
	// status of every request with request_id and trace_id attached.
	return resilience.Chain(
		resilience.RequestID(),
		resilience.Tracing(s.Tracer, routeLabel),
		resilience.Metrics(obs.http),
		resilience.AccessLog(s.Logger),
		resilience.Recover(s.recoverLogf()),
	)(root)
}

// recorder returns the tracer's flight recorder, or nil without one.
func (s *Server) recorder() *observe.FlightRecorder {
	if s.Tracer == nil {
		return nil
	}
	return s.Tracer.Recorder()
}

// recoverLogf adapts the configured logger for the panic-recovery
// middleware, preferring the structured logger.
func (s *Server) recoverLogf() func(format string, args ...any) {
	if s.Logger != nil {
		return func(format string, args ...any) {
			s.Logger.Error(fmt.Sprintf(format, args...))
		}
	}
	return s.Logf
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, r *http.Request, status int, msg string) {
	writeJSON(w, status, map[string]string{
		"error":      msg,
		"request_id": resilience.RequestIDFrom(r.Context()),
	})
}

// decodeJSON enforces method, content type, and the body cap, then decodes
// the request body into v. It writes the error response and returns false
// on any failure.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, r, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
		writeErr(w, r, http.StatusUnsupportedMediaType, "Content-Type must be application/json")
		return false
	}
	if s.MaxBodyBytes > 0 {
		// Belt and braces: the resilience.MaxBytes middleware caps the
		// body too, but the handler must be safe even when mounted bare.
		r.Body = http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeErr(w, r, http.StatusBadRequest, "bad JSON: "+err.Error())
		return false
	}
	return true
}

// ready writes a 503 and returns nil when no model is loaded yet.
func (s *Server) ready(w http.ResponseWriter, r *http.Request) *model {
	m := s.snapshot()
	if m == nil {
		writeErr(w, r, http.StatusServiceUnavailable, "no model loaded")
		return nil
	}
	return m
}

func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

// serviceTier classifies API requests for the admission controller. The
// probes and /metrics never reach it (mounted outside the hardened chain);
// within the chain only the admin surface is critical — an operator
// diagnosing or reloading an overloaded replica must get through.
func serviceTier(r *http.Request) resilience.Tier {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/admin/"):
		return resilience.TierCritical
	case strings.HasPrefix(p, "/v1/jobs"):
		return resilience.TierBackground
	default:
		return resilience.TierInteractive
	}
}

// deadlineFloor is the per-route deadline floor for the DeadlineBudget
// middleware: interactive check requests below DeadlineFloor of remaining
// budget are doomed (the caller will give up before the answer lands) and
// fast-fail instead of occupying a scoring slot.
func (s *Server) deadlineFloor(r *http.Request) time.Duration {
	if strings.HasPrefix(r.URL.Path, "/v1/check-") {
		return s.DeadlineFloor
	}
	return 0
}

// readyzResponse is the body of /v1/readyz.
type readyzResponse struct {
	Status   string   `json:"status"`
	Degraded []string `json:"degraded,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	m := s.snapshot()
	if m == nil {
		writeErr(w, r, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	// Degraded-but-serving is still ready: a stale model or an open
	// registry breaker means convergence is impaired, not that this
	// replica should be pulled from rotation — yanking every replica the
	// moment the registry dies would turn a control-plane outage into a
	// data-plane one.
	var reasons []string
	if s.MaxModelStaleness > 0 && s.modelAge(m) > s.MaxModelStaleness {
		reasons = append(reasons, "model_stale")
	}
	if s.DegradedCheck != nil {
		reasons = append(reasons, s.DegradedCheck()...)
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusOK, readyzResponse{Status: "degraded", Degraded: reasons})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Status: "ready"})
}

// modelAge mirrors the autodetect_model_age_seconds gauge: time since
// publish when known, since load otherwise.
func (s *Server) modelAge(m *model) time.Duration {
	if m.info.PublishedUnixMs > 0 {
		return time.Since(time.UnixMilli(m.info.PublishedUnixMs))
	}
	return time.Since(m.loaded)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	m := s.ready(w, r)
	if m == nil {
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:    "ok",
		Languages: len(m.det.Languages()),
		Bytes:     m.det.Bytes(),
		Semantic:  m.sem != nil,
		Version:   m.info.Version,
		Source:    m.info.Source,
		SHA256:    m.info.SHA256,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, r, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.Reload == nil {
		writeErr(w, r, http.StatusNotImplemented, "no reload hook configured")
		return
	}
	det, sem, info, err := s.Reload()
	if err != nil {
		s.logf("reload failed: %v", err)
		writeErr(w, r, http.StatusInternalServerError, "reload failed: "+err.Error())
		return
	}
	if err := s.SwapInfo(det, sem, info); err != nil {
		writeErr(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	s.logf("reload succeeded: %d languages, %d bytes, version %d, source %q",
		len(det.Languages()), det.Bytes(), info.Version, info.Source)
	writeJSON(w, http.StatusOK, healthResponse{
		Status:    "reloaded",
		Languages: len(det.Languages()),
		Bytes:     det.Bytes(),
		Semantic:  sem != nil,
		Version:   info.Version,
		Source:    info.Source,
		SHA256:    info.SHA256,
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.Logger != nil {
		s.Logger.Info(fmt.Sprintf(format, args...))
		return
	}
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// checkColumn scores one column through the shared audit helper — the
// same code path the batch-job executor runs, so synchronous and batch
// findings are identical for identical inputs.
func (m *model) checkColumn(ctx context.Context, values []string, minConf float64) []Finding {
	return audit.CheckColumn(ctx, m.det, m.sem, values, minConf)
}

func (s *Server) handleColumn(w http.ResponseWriter, r *http.Request) {
	m := s.ready(w, r)
	if m == nil {
		return
	}
	var req columnRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Values) == 0 {
		writeErr(w, r, http.StatusBadRequest, "values is empty")
		return
	}
	if len(req.Values) > s.MaxValues {
		writeErr(w, r, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("at most %d values per column", s.MaxValues))
		return
	}
	ctx, end := observe.Span(r.Context(), "check_column")
	findings := m.checkColumn(ctx, req.Values, req.MinConfidence)
	end()
	writeJSON(w, http.StatusOK, columnResponse{Findings: findings})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	m := s.ready(w, r)
	if m == nil {
		return
	}
	var req tableRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Columns) == 0 {
		writeErr(w, r, http.StatusBadRequest, "columns is empty")
		return
	}
	total := 0
	for _, vs := range req.Columns {
		total += len(vs)
	}
	if s.MaxTableValues > 0 && total > s.MaxTableValues {
		writeErr(w, r, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("table has %d values, at most %d per request", total, s.MaxTableValues))
		return
	}
	ctx, end := observe.Span(r.Context(), "check_table")
	resp := tableResponse{
		Columns: audit.CheckTable(ctx, m.det, m.sem, req.Columns, req.MinConfidence, s.TableWorkers),
	}
	end()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	m := s.ready(w, r)
	if m == nil {
		return
	}
	var req pairRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.A == "" || req.B == "" {
		writeErr(w, r, http.StatusBadRequest, "need both a and b")
		return
	}
	_, end := observe.Span(r.Context(), "check_pair")
	ps := m.det.ScorePair(req.A, req.B)
	end()
	resp := pairResponse{Incompatible: ps.Flagged, Confidence: ps.Confidence}
	for _, l := range ps.ByLanguage {
		resp.ByLanguage = append(resp.ByLanguage, struct {
			LanguageID int     `json:"language_id"`
			NPMI       float64 `json:"npmi"`
			Fires      bool    `json:"fires"`
			Precision  float64 `json:"precision"`
		}{l.LanguageID, l.NPMI, l.Fires, l.Precision})
	}
	writeJSON(w, http.StatusOK, resp)
}
