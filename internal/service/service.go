// Package service exposes a trained Auto-Detect model over HTTP — the
// "spell-checker for data" deployment the paper targets (error detection
// as an always-on background service; Appendix G discusses the background
// execution mode). The API is JSON over four endpoints:
//
//	GET  /v1/health        → model summary
//	POST /v1/check-column  → findings for one column
//	POST /v1/check-table   → findings for every column of a table
//	POST /v1/check-pair    → verdict for a single value pair
package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/repair"
	"repro/internal/semantic"
)

// Server serves error-detection requests from a trained detector and an
// optional value-level semantic model.
type Server struct {
	det *core.Detector
	sem *semantic.Model

	// MaxValues bounds the accepted column length (default 10000).
	MaxValues int
}

// New returns a server; sem may be nil to disable value-level checks.
func New(det *core.Detector, sem *semantic.Model) *Server {
	return &Server{det: det, sem: sem, MaxValues: 10000}
}

// Finding mirrors core.Finding for JSON.
type Finding struct {
	Value      string  `json:"value"`
	Index      int     `json:"index"`
	Partner    string  `json:"partner"`
	Confidence float64 `json:"confidence"`
	// Kind is "pattern" or "semantic".
	Kind string `json:"kind"`
	// Suggestion, when non-empty, proposes a repaired value rendered in
	// the column's dominant format; SuggestionRule names the repair.
	Suggestion     string `json:"suggestion,omitempty"`
	SuggestionRule string `json:"suggestion_rule,omitempty"`
}

// columnRequest is the body of /v1/check-column.
type columnRequest struct {
	Values []string `json:"values"`
	// MinConfidence filters findings (default 0.5).
	MinConfidence float64 `json:"min_confidence"`
}

// columnResponse is the body of /v1/check-column responses.
type columnResponse struct {
	Findings []Finding `json:"findings"`
}

// tableRequest is the body of /v1/check-table.
type tableRequest struct {
	Columns       map[string][]string `json:"columns"`
	MinConfidence float64             `json:"min_confidence"`
}

// tableResponse maps column names to findings.
type tableResponse struct {
	Columns map[string][]Finding `json:"columns"`
}

// pairRequest is the body of /v1/check-pair.
type pairRequest struct {
	A string `json:"a"`
	B string `json:"b"`
}

// pairResponse is the body of /v1/check-pair responses.
type pairResponse struct {
	Incompatible bool    `json:"incompatible"`
	Confidence   float64 `json:"confidence"`
	ByLanguage   []struct {
		LanguageID int     `json:"language_id"`
		NPMI       float64 `json:"npmi"`
		Fires      bool    `json:"fires"`
		Precision  float64 `json:"precision"`
	} `json:"by_language"`
}

// healthResponse is the body of /v1/health responses.
type healthResponse struct {
	Status    string `json:"status"`
	Languages int    `json:"languages"`
	Bytes     int    `json:"bytes"`
	Semantic  bool   `json:"semantic"`
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/v1/check-column", s.handleColumn)
	mux.HandleFunc("/v1/check-table", s.handleTable)
	mux.HandleFunc("/v1/check-pair", s.handlePair)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:    "ok",
		Languages: len(s.det.Languages()),
		Bytes:     s.det.Bytes(),
		Semantic:  s.sem != nil,
	})
}

// checkColumn runs both detectors over a column.
func (s *Server) checkColumn(values []string, minConf float64) []Finding {
	if minConf == 0 {
		minConf = 0.5
	}
	var out []Finding
	for _, f := range s.det.DetectColumn(values) {
		if f.Confidence < minConf {
			continue
		}
		sf := Finding{
			Value: f.Value, Index: f.Index, Partner: f.Partner,
			Confidence: f.Confidence, Kind: "pattern",
		}
		if sug, ok := repair.Suggest(values, f.Value); ok {
			sf.Suggestion = sug.Proposed
			sf.SuggestionRule = sug.Rule
		}
		out = append(out, sf)
	}
	if s.sem != nil {
		for _, f := range s.sem.DetectColumn(values) {
			if f.Confidence < minConf {
				continue
			}
			out = append(out, Finding{
				Value: f.Value, Index: f.Index, Partner: f.Partner,
				Confidence: f.Confidence, Kind: "semantic",
			})
		}
	}
	return out
}

func (s *Server) handleColumn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req columnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Values) == 0 {
		writeErr(w, http.StatusBadRequest, "values is empty")
		return
	}
	if len(req.Values) > s.MaxValues {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("at most %d values per column", s.MaxValues))
		return
	}
	writeJSON(w, http.StatusOK, columnResponse{Findings: s.checkColumn(req.Values, req.MinConfidence)})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req tableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Columns) == 0 {
		writeErr(w, http.StatusBadRequest, "columns is empty")
		return
	}
	total := 0
	for _, vs := range req.Columns {
		total += len(vs)
	}
	if total > s.MaxValues*10 {
		writeErr(w, http.StatusRequestEntityTooLarge, "table too large")
		return
	}
	resp := tableResponse{Columns: map[string][]Finding{}}
	for name, vs := range req.Columns {
		if fs := s.checkColumn(vs, req.MinConfidence); len(fs) > 0 {
			resp.Columns[name] = fs
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req pairRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.A == "" || req.B == "" {
		writeErr(w, http.StatusBadRequest, "need both a and b")
		return
	}
	ps := s.det.ScorePair(req.A, req.B)
	resp := pairResponse{Incompatible: ps.Flagged, Confidence: ps.Confidence}
	for _, l := range ps.ByLanguage {
		resp.ByLanguage = append(resp.ByLanguage, struct {
			LanguageID int     `json:"language_id"`
			NPMI       float64 `json:"npmi"`
			Fires      bool    `json:"fires"`
			Precision  float64 `json:"precision"`
		}{l.LanguageID, l.NPMI, l.Fires, l.Precision})
	}
	writeJSON(w, http.StatusOK, resp)
}
