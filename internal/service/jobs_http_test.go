package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/jobs"
	"repro/internal/semantic"
)

// batchTable builds a dirty multi-column table with unique column names.
func batchTable(cols int) map[string][]string {
	c := corpus.Generate(corpus.EntXLSProfile(), cols, 99)
	out := make(map[string][]string, len(c.Columns))
	for i, col := range c.Columns {
		out[fmt.Sprintf("%03d-%s", i, col.Name)] = col.Values
	}
	return out
}

// newJobsServer boots a server with the batch subsystem mounted. mut may
// adjust the Server and jobs.Config before anything starts.
func newJobsServer(t *testing.T, mut func(*Server, *jobs.Config)) (*httptest.Server, *Server) {
	t.Helper()
	det, sem := trainedModel(t)
	svc := New(det, sem)
	cfg := jobs.Config{
		Dir:     t.TempDir(),
		Workers: 2,
		Model:   svc.Model,
		Metrics: svc.Registry(),
	}
	if mut != nil {
		mut(svc, &cfg)
	}
	mgr, err := jobs.Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Jobs = mgr
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := mgr.Close(ctx); err != nil {
			t.Errorf("jobs drain: %v", err)
		}
	})
	return ts, svc
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func doDelete(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// waitJobHTTP polls GET /v1/jobs/{id} until the job reaches want.
func waitJobHTTP(t *testing.T, base, id, want string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := getBody(t, base+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, body)
		}
		var js jobStatus
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
		if js.Status == want {
			return js
		}
		if js.Status == string(jobs.StatusFailed) && want != string(jobs.StatusFailed) {
			t.Fatalf("job failed: %s", js.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for job %s to reach %s", id, want)
	return jobStatus{}
}

func TestJobsDisabledWithoutManager(t *testing.T) {
	s := testServer(t)
	resp, body := getBody(t, s.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "disabled") {
		t.Fatalf("body = %s", body)
	}
}

// TestJobLifecycleHTTP walks the whole quickstart: submit, poll, page
// results, and cross-checks the paged findings against the synchronous
// /v1/check-table scorer — both paths share audit.CheckColumn, so the
// same table must yield byte-identical per-column findings.
func TestJobLifecycleHTTP(t *testing.T) {
	ts, _ := newJobsServer(t, nil)
	table := batchTable(32)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"columns": table})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var submitted jobStatus
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.ID == "" || submitted.ColumnsTotal != len(table) {
		t.Fatalf("submit response: %+v", submitted)
	}

	done := waitJobHTTP(t, ts.URL, submitted.ID, "done")
	if done.Progress != 1 || done.ColumnsDone != len(table) {
		t.Fatalf("done status: %+v", done)
	}
	if done.FindingsTotal == 0 {
		t.Fatal("dirty table produced no findings")
	}

	// The job shows up in the listing.
	resp, body = getBody(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Jobs []jobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != submitted.ID {
		t.Fatalf("listing = %+v", list)
	}

	// Page through results with a deliberately small page size.
	byColumn := map[string][]Finding{}
	page, fetched := 0, 0
	for {
		resp, body := getBody(t, fmt.Sprintf("%s/v1/jobs/%s/results?page=%d&page_size=7",
			ts.URL, submitted.ID, page))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("results status %d: %s", resp.StatusCode, body)
		}
		var pr jobResultsResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if !pr.Complete || pr.TotalFindings != done.FindingsTotal || pr.PageSize != 7 {
			t.Fatalf("results page %d: %+v", page, pr)
		}
		for _, f := range pr.Findings {
			byColumn[f.Column] = append(byColumn[f.Column], f.Finding)
		}
		fetched += len(pr.Findings)
		if pr.NextPage == nil {
			break
		}
		if *pr.NextPage != page+1 {
			t.Fatalf("next_page = %d after page %d", *pr.NextPage, page)
		}
		page = *pr.NextPage
	}
	if fetched != done.FindingsTotal {
		t.Fatalf("paged %d findings, status reported %d", fetched, done.FindingsTotal)
	}

	// Cross-check against the synchronous endpoint.
	resp, body = postJSON(t, ts.URL+"/v1/check-table", map[string]any{"columns": table})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check-table status %d: %s", resp.StatusCode, body)
	}
	var sync struct {
		Columns map[string][]Finding `json:"columns"`
	}
	if err := json.Unmarshal(body, &sync); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(byColumn)
	b, _ := json.Marshal(sync.Columns)
	if string(a) != string(b) {
		t.Fatalf("batch findings differ from synchronous check-table\nbatch: %s\nsync: %s", a, b)
	}

	// The jobs_* metric families are exported on /metrics.
	resp, body = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, family := range []string{
		"autodetect_jobs_submitted_total",
		"autodetect_jobs_completed_total",
		"autodetect_jobs_failed_total",
		"autodetect_jobs_queue_depth",
		"autodetect_jobs_running",
		"autodetect_job_seconds",
		"autodetect_job_column_seconds",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	if !strings.Contains(string(body), "autodetect_jobs_submitted_total 1") {
		t.Errorf("submitted counter not incremented:\n%s", grepLines(string(body), "jobs_submitted"))
	}
}

func grepLines(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestJobResultsPaginationEdges(t *testing.T) {
	ts, _ := newJobsServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"columns": batchTable(8)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var submitted jobStatus
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	waitJobHTTP(t, ts.URL, submitted.ID, "done")

	// Page far past the end: empty page, no next_page.
	resp, body = getBody(t, ts.URL+"/v1/jobs/"+submitted.ID+"/results?page=9999")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr jobResultsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Findings) != 0 || pr.NextPage != nil {
		t.Fatalf("past-the-end page: %+v", pr)
	}

	// Oversized page_size clamps to the maximum.
	resp, body = getBody(t, ts.URL+"/v1/jobs/"+submitted.ID+"/results?page_size=99999")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.PageSize != maxResultsPageSize {
		t.Fatalf("page_size = %d, want clamp to %d", pr.PageSize, maxResultsPageSize)
	}

	// Garbage paging parameters are a 400.
	for _, q := range []string{"page=-1", "page=abc", "page_size=x"} {
		resp, body = getBody(t, ts.URL+"/v1/jobs/"+submitted.ID+"/results?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s -> status %d: %s", q, resp.StatusCode, body)
		}
	}
}

func TestJobNotFoundHTTP(t *testing.T) {
	ts, _ := newJobsServer(t, nil)
	for _, path := range []string{
		"/v1/jobs/0123456789abcdef",         // well-formed but unknown
		"/v1/jobs/not-a-valid-id",           // malformed
		"/v1/jobs/0123456789abcdef/results", // results of unknown job
	} {
		resp, body := getBody(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s -> %d: %s", path, resp.StatusCode, body)
		}
	}
	if resp, body := doDelete(t, ts.URL+"/v1/jobs/0123456789abcdef"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown -> %d: %s", resp.StatusCode, body)
	}
}

func TestJobSubmitValidationHTTP(t *testing.T) {
	ts, svc := newJobsServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"columns": map[string][]string{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty columns -> %d: %s", resp.StatusCode, body)
	}

	// The MaxTableValues cap guards both the batch and synchronous paths.
	svc.MaxTableValues = 10
	big := map[string]any{"columns": map[string][]string{
		"a": {"1", "2", "3", "4", "5", "6"},
		"b": {"1", "2", "3", "4", "5"},
	}}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized job -> %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/check-table", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized check-table -> %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "at most 10") {
		t.Fatalf("cap message should name the limit: %s", body)
	}
}

func TestJobQueueFullHTTP(t *testing.T) {
	det, sem := trainedModel(t)
	release := make(chan struct{})
	ts, svc := newJobsServer(t, func(s *Server, cfg *jobs.Config) {
		cfg.Workers = 1
		cfg.MaxQueued = 1
		cfg.Model = func() (*core.Detector, *semantic.Model) {
			<-release
			return det, sem
		}
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	small := map[string]any{"columns": map[string][]string{"a": {"x", "y"}}}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", small)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit -> %d: %s", resp.StatusCode, body)
	}
	// Wait until the single worker has popped the first job so the queue
	// slot frees up; the worker is now blocked inside the model snapshot.
	deadline := time.Now().Add(30 * time.Second)
	for svc.Jobs.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", small)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit -> %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", small)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit -> %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After = %q, want \"5\"", got)
	}
	close(release)
}

func TestJobDeleteHTTP(t *testing.T) {
	ts, _ := newJobsServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"columns": batchTable(4)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", resp.StatusCode, body)
	}
	var submitted jobStatus
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	waitJobHTTP(t, ts.URL, submitted.ID, "done")

	resp, body = doDelete(t, ts.URL+"/v1/jobs/"+submitted.ID)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("deleted")) {
		t.Fatalf("delete done job -> %d: %s", resp.StatusCode, body)
	}
	resp, body = getBody(t, ts.URL+"/v1/jobs/"+submitted.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete -> %d: %s", resp.StatusCode, body)
	}
}

func TestJobCancelRunningHTTP(t *testing.T) {
	det, sem := trainedModel(t)
	release := make(chan struct{})
	ts, _ := newJobsServer(t, func(s *Server, cfg *jobs.Config) {
		cfg.Workers = 1
		cfg.Model = func() (*core.Detector, *semantic.Model) {
			<-release
			return det, sem
		}
	})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"columns": batchTable(4)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", resp.StatusCode, body)
	}
	var submitted jobStatus
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	// The job is wedged in the model snapshot: DELETE must answer 202
	// (cancellation requested) and the job must settle as cancelled.
	resp, body = doDelete(t, ts.URL+"/v1/jobs/"+submitted.ID)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running -> %d: %s", resp.StatusCode, body)
	}
	close(release)
	got := waitJobHTTP(t, ts.URL, submitted.ID, "cancelled")
	if got.Status != "cancelled" {
		t.Fatalf("final status %q", got.Status)
	}
}
