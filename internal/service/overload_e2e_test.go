package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/observe"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/retry"
	"repro/internal/semantic"
)

var overloadBenchOut = flag.String("service.overloadout", "",
	"write the overload chaos result (BENCH_overload.json) to this path")

// overloadBench is the BENCH_overload.json payload: goodput of the
// interactive tier after recovery plus the shed/bound evidence from the
// chaos phases.
type overloadBench struct {
	Benchmark                   string  `json:"benchmark"`
	OverloadFactor              int     `json:"overload_factor"`
	ShedCritical                float64 `json:"shed_critical"`
	ShedInteractive             float64 `json:"shed_interactive"`
	ShedBackground              float64 `json:"shed_background"`
	UpstreamRequestsDuringStall uint64  `json:"upstream_requests_during_stall"`
	UpstreamRequestBound        uint64  `json:"upstream_request_bound"`
	RegistryHitsDuringStall     int64   `json:"registry_hits_during_stall"`
	RecoveredMillis             float64 `json:"recovered_ms"`
	GoodputRequests             int     `json:"goodput_requests"`
	GoodputP50Millis            float64 `json:"goodput_p50_ms"`
	GoodputP99Millis            float64 `json:"goodput_p99_ms"`
}

// metricValue extracts one sample's value from a Prometheus text page.
func metricValue(t *testing.T, page, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found on page", series)
	return 0
}

// TestOverloadChaos is the end-to-end degradation drill the tentpole
// promises: a replica whose registry dependency wedges mid-flight while
// client load runs at 4x its concurrency limit must (a) bound its upstream
// retry traffic by the retry budget and breaker, (b) shed background
// before interactive and never shed critical, and (c) recover to baseline
// within one breaker reset window once the fault heals — all while
// /v1/readyz reports degraded-but-serving instead of dropping out of
// rotation.
func TestOverloadChaos(t *testing.T) {
	det, sem := trainedModel(t)
	mreg := observe.NewRegistry()
	ctx := context.Background()

	// --- Upstream registry with one published model, behind a
	// fault-injecting transport the test can wedge at will. ---
	store, err := registry.Open(t.TempDir(), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := det.Save(&raw); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Publish(raw.Bytes(), "", "chaos", ""); err != nil {
		t.Fatal(err)
	}
	var registryHits atomic.Int64
	regHandler := registry.NewServer(store).Handler()
	regSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		registryHits.Add(1)
		regHandler.ServeHTTP(w, r)
	}))
	defer regSrv.Close()

	ft := faultfs.NewTransport(http.DefaultTransport, faultfs.HTTPConfig{Seed: 1})

	const openTimeout = 500 * time.Millisecond
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		Name:                "registry_pull",
		ConsecutiveFailures: 3,
		OpenTimeout:         openTimeout,
		Metrics:             mreg,
	})
	const burst = 4
	budget := resilience.NewRetryBudget(resilience.BudgetConfig{
		Name: "registry_pull", Burst: burst, Metrics: mreg,
	})
	puller, err := registry.NewPuller(registry.PullerConfig{
		URL:     regSrv.URL,
		HTTP:    &http.Client{Transport: ft},
		Retry:   retry.Policy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond, AttemptTimeout: 100 * time.Millisecond},
		Breaker: breaker,
		Budget:  budget,
		Apply:   func(registry.VersionInfo, []byte) error { return nil },
		Metrics: mreg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, changed, err := puller.PullNow(ctx); err != nil || !changed {
		t.Fatalf("baseline pull: changed=%t err=%v", changed, err)
	}

	// --- Replica under test: limit 4, background bound 2, AIMD held inert
	// by a huge latency target so the tier bounds stay exact. ---
	reloadGate := make(chan struct{})
	reloadEntered := make(chan struct{}, 64)
	var reloadFast atomic.Bool
	svc := NewWithInfo(det, sem, ModelInfo{Source: "chaos"})
	svc.MaxInFlight = 4
	svc.LatencyTarget = time.Minute
	svc.Metrics = mreg
	svc.DegradedCheck = func() []string {
		if breaker.State() != resilience.BreakerClosed {
			return []string{"registry_breaker_open"}
		}
		return nil
	}
	svc.Reload = func() (*core.Detector, *semantic.Model, ModelInfo, error) {
		if !reloadFast.Load() {
			reloadEntered <- struct{}{}
			<-reloadGate
		}
		return det, sem, ModelInfo{Source: "chaos"}, nil
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	readyz := func() readyzResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/readyz status %d", resp.StatusCode)
		}
		var rz readyzResponse
		if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
			t.Fatal(err)
		}
		return rz
	}
	// park occupies n admission slots with critical requests whose reload
	// hook blocks until the gate closes, pinning inflight at an exact value.
	park := func(n int) *sync.WaitGroup {
		t.Helper()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/admin/reload", "application/json", nil)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("parked reload: status %d, want 200", resp.StatusCode)
				}
			}()
		}
		for i := 0; i < n; i++ {
			select {
			case <-reloadEntered:
			case <-time.After(10 * time.Second):
				t.Fatalf("parked request %d never admitted", i)
			}
		}
		return &wg
	}

	if rz := readyz(); rz.Status != "ready" {
		t.Fatalf("baseline readyz = %+v, want ready", rz)
	}

	// --- Shed ordering: background first, interactive next, critical never.
	wg1 := park(2) // inflight 2 == background bound (4 * 0.5)
	if got := get("/v1/jobs/some-id"); got != http.StatusTooManyRequests {
		t.Fatalf("background at its bound: status %d, want 429", got)
	}
	if got := get("/v1/health"); got != http.StatusOK {
		t.Fatalf("interactive while only background is shed: status %d, want 200", got)
	}
	wg2 := park(2) // inflight 4 == full limit
	if got := get("/v1/health"); got != http.StatusTooManyRequests {
		t.Fatalf("interactive at the limit: status %d, want 429", got)
	}

	// --- Wedge the registry and keep polling: the breaker plus retry
	// budget must collapse the poll loop to a bounded trickle, and the
	// stalled upstream must see zero of it. ---
	ft.SetStall(true)
	reqsBefore := ft.Requests()
	hitsBefore := registryHits.Load()
	const polls = 12
	breakerRejected := 0
	for i := 0; i < polls; i++ {
		if _, _, err := puller.PullNow(ctx); errors.Is(err, resilience.ErrBreakerOpen) {
			breakerRejected++
		}
		time.Sleep(30 * time.Millisecond)
	}
	stallReqs := ft.Requests() - reqsBefore
	if bound := uint64(polls + burst); stallReqs > bound {
		t.Fatalf("upstream attempts during stall = %d, want <= %d (polls %d + budget burst %d)",
			stallReqs, bound, polls, burst)
	}
	if breakerRejected == 0 {
		t.Fatal("breaker never collapsed a poll round to ErrBreakerOpen")
	}
	if ft.Stalls() == 0 {
		t.Fatal("forced stall never engaged")
	}
	if hits := registryHits.Load() - hitsBefore; hits != 0 {
		t.Fatalf("wedged registry served %d requests, want 0", hits)
	}
	if st := breaker.State(); st != resilience.BreakerOpen {
		t.Fatalf("breaker state during stall = %v, want open", st)
	}
	if rz := readyz(); rz.Status != "degraded" || len(rz.Degraded) == 0 || rz.Degraded[0] != "registry_breaker_open" {
		t.Fatalf("readyz during outage = %+v, want degraded-but-serving with registry_breaker_open", rz)
	}

	// --- 4x overload at full saturation: every interactive request sheds,
	// every critical request still lands. ---
	const overloadFactor = 4
	var wgLoad sync.WaitGroup
	var shed429, served200 atomic.Int64
	for i := 0; i < overloadFactor*svc.MaxInFlight; i++ {
		wgLoad.Add(1)
		go func() {
			defer wgLoad.Done()
			switch get("/v1/health") {
			case http.StatusTooManyRequests:
				shed429.Add(1)
			case http.StatusOK:
				served200.Add(1)
			}
		}()
	}
	wgLoad.Wait()
	if got := shed429.Load(); got != overloadFactor*int64(svc.MaxInFlight) {
		t.Fatalf("interactive sheds under 4x overload = %d (200s: %d), want all %d shed",
			got, served200.Load(), overloadFactor*svc.MaxInFlight)
	}
	reloadFast.Store(true)
	for i := 0; i < 8; i++ {
		resp, err := http.Post(ts.URL+"/v1/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("critical during saturated overload: status %d, want 200", resp.StatusCode)
		}
	}

	// --- Heal: release the parked work and un-wedge the registry. The
	// breaker must close within one reset window (plus scheduling slack)
	// and interactive traffic must return to all-200s. ---
	close(reloadGate)
	wg1.Wait()
	wg2.Wait()
	ft.SetStall(false)
	healStart := time.Now()
	recovered := false
	for time.Since(healStart) < 10*time.Second {
		if _, _, err := puller.PullNow(ctx); err == nil && breaker.State() == resilience.BreakerClosed {
			recovered = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("breaker never closed after the fault healed")
	}
	recoveredIn := time.Since(healStart)
	// Worst case the open window restarted just before the heal: one full
	// OpenTimeout until the probe, then one successful round. Anything
	// beyond one window plus generous scheduling slack is a regression.
	if recoveredIn > openTimeout+2*time.Second {
		t.Fatalf("recovery took %v, want within one %v reset window (plus slack)", recoveredIn, openTimeout)
	}
	if rz := readyz(); rz.Status != "ready" {
		t.Fatalf("readyz after heal = %+v, want ready", rz)
	}
	for i := 0; i < 20; i++ {
		if got := get("/v1/health"); got != http.StatusOK {
			t.Fatalf("interactive after heal: request %d got %d, want 200 (baseline restored)", i, got)
		}
	}

	// --- Post-recovery interactive goodput, and the shed ledger: the
	// critical series must exist and read exactly zero. ---
	payload := map[string]any{"values": []string{
		"2011-01-01", "2012-05-14", "2013-11-30", "2011/06/20",
	}}
	const goodputRequests = 100
	lat := make([]time.Duration, 0, goodputRequests)
	for i := 0; i < goodputRequests; i++ {
		start := time.Now()
		resp, _ := postJSON(t, ts.URL+"/v1/check-column", payload)
		lat = append(lat, time.Since(start))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("goodput request %d: status %d", i, resp.StatusCode)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	pageRaw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	page := string(pageRaw)
	shedCrit := metricValue(t, page, `autodetect_resilience_sheds_total{tier="critical"}`)
	shedInt := metricValue(t, page, `autodetect_resilience_sheds_total{tier="interactive"}`)
	shedBg := metricValue(t, page, `autodetect_resilience_sheds_total{tier="background"}`)
	if shedCrit != 0 {
		t.Fatalf("critical sheds = %v, want exactly 0", shedCrit)
	}
	if shedInt == 0 || shedBg == 0 {
		t.Fatalf("shed ledger interactive=%v background=%v, want both > 0", shedInt, shedBg)
	}
	for _, series := range []string{
		`autodetect_resilience_breaker_state{name="registry_pull"}`,
		`autodetect_resilience_retry_budget_balance{client="registry_pull"}`,
		"autodetect_resilience_admit_limit",
	} {
		metricValue(t, page, series) // existence is the assertion
	}

	out := overloadBench{
		Benchmark:                   "overload_graceful_degradation",
		OverloadFactor:              overloadFactor,
		ShedCritical:                shedCrit,
		ShedInteractive:             shedInt,
		ShedBackground:              shedBg,
		UpstreamRequestsDuringStall: stallReqs,
		UpstreamRequestBound:        uint64(polls + burst),
		RegistryHitsDuringStall:     0,
		RecoveredMillis:             float64(recoveredIn) / float64(time.Millisecond),
		GoodputRequests:             goodputRequests,
		GoodputP50Millis:            quantileMillis(lat, 0.50),
		GoodputP99Millis:            quantileMillis(lat, 0.99),
	}
	t.Logf("stall attempts=%d/%d sheds crit/int/bg=%v/%v/%v recovered=%.0fms goodput p50=%.2fms p99=%.2fms",
		stallReqs, polls+burst, shedCrit, shedInt, shedBg,
		out.RecoveredMillis, out.GoodputP50Millis, out.GoodputP99Millis)
	if *overloadBenchOut == "" {
		return
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if dir := filepath.Dir(*overloadBenchOut); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(*overloadBenchOut, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
