package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
	"repro/internal/semantic"
)

var (
	mdlOnce sync.Once
	mdlDet  *core.Detector
	mdlSem  *semantic.Model
	mdlErr  error

	srvOnce sync.Once
	srv     *httptest.Server
)

// trainedModel trains one detector + semantic model shared by every test.
func trainedModel(t *testing.T) (*core.Detector, *semantic.Model) {
	t.Helper()
	mdlOnce.Do(func() {
		c := corpus.Generate(corpus.WebProfile(), 3000, 31)
		cfg := core.DefaultTrainConfig()
		cfg.Languages = []pattern.Language{pattern.Crude(), pattern.L1(), pattern.L2()}
		ds := distsup.DefaultConfig()
		ds.PositivePairs, ds.NegativePairs = 2500, 2500
		cfg.DistSup = ds
		mdlDet, _, mdlErr = core.Train(c, cfg)
		if mdlErr != nil {
			return
		}
		mdlSem, mdlErr = semantic.Train(c, semantic.DefaultConfig())
	})
	if mdlErr != nil {
		t.Fatal(mdlErr)
	}
	return mdlDet, mdlSem
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	det, sem := trainedModel(t)
	srvOnce.Do(func() {
		srv = httptest.NewServer(New(det, sem).Handler())
	})
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealth(t *testing.T) {
	s := testServer(t)
	resp, err := http.Get(s.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h struct {
		Status    string `json:"status"`
		Languages int    `json:"languages"`
		Semantic  bool   `json:"semantic"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Languages == 0 || !h.Semantic {
		t.Errorf("health = %+v", h)
	}
	// Wrong method.
	if resp, _ := postJSON(t, s.URL+"/v1/health", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/health status %d", resp.StatusCode)
	}
}

func TestCheckColumn(t *testing.T) {
	s := testServer(t)
	resp, body := postJSON(t, s.URL+"/v1/check-column", map[string]any{
		"values": []string{"2011-01-01", "2012-05-14", "2013-11-30", "2011/06/20"},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr struct {
		Findings []Finding `json:"findings"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Findings) == 0 || cr.Findings[0].Value != "2011/06/20" {
		t.Errorf("findings = %+v", cr.Findings)
	}
	if cr.Findings[0].Kind != "pattern" {
		t.Errorf("kind = %q", cr.Findings[0].Kind)
	}
	if cr.Findings[0].Suggestion != "2011-06-20" || cr.Findings[0].SuggestionRule != "reformat-date" {
		t.Errorf("suggestion = %q (%q)", cr.Findings[0].Suggestion, cr.Findings[0].SuggestionRule)
	}
}

func TestCheckColumnValidation(t *testing.T) {
	s := testServer(t)
	if resp, _ := postJSON(t, s.URL+"/v1/check-column", map[string]any{"values": []string{}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty values: status %d", resp.StatusCode)
	}
	resp, err := http.Post(s.URL+"/v1/check-column", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON: status %d", resp.StatusCode)
	}
	big := make([]string, 10001)
	for i := range big {
		big[i] = "x"
	}
	if resp, _ := postJSON(t, s.URL+"/v1/check-column", map[string]any{"values": big}); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized column: status %d", resp.StatusCode)
	}
}

func TestCheckTable(t *testing.T) {
	s := testServer(t)
	resp, body := postJSON(t, s.URL+"/v1/check-table", map[string]any{
		"columns": map[string][]string{
			"date":  {"2011-01-01", "2012-05-14", "2013-11-30", "2011/06/20"},
			"count": {"1", "2", "3", "4"},
		},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var tr struct {
		Columns map[string][]Finding `json:"columns"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Columns["date"]) == 0 {
		t.Error("date column finding missing")
	}
	if _, ok := tr.Columns["count"]; ok {
		t.Error("clean column should be absent from response")
	}
	if resp, _ := postJSON(t, s.URL+"/v1/check-table", map[string]any{"columns": map[string][]string{}}); resp.StatusCode != http.StatusBadRequest {
		t.Error("empty table should 400")
	}
}

func TestCheckPair(t *testing.T) {
	s := testServer(t)
	resp, body := postJSON(t, s.URL+"/v1/check-pair", map[string]string{
		"a": "2011-01-01", "b": "2011/01/01",
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr pairResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Incompatible || len(pr.ByLanguage) == 0 {
		t.Errorf("pair response = %+v", pr)
	}
	if resp, _ := postJSON(t, s.URL+"/v1/check-pair", map[string]string{"a": "x"}); resp.StatusCode != http.StatusBadRequest {
		t.Error("missing b should 400")
	}
}

func TestSemanticFindingsSurface(t *testing.T) {
	s := testServer(t)
	_, body := postJSON(t, s.URL+"/v1/check-column", map[string]any{
		"values":         []string{"Washington", "Oregon", "Texas", "Florida", "Ohio", "Seattle", "Nevada", "Utah"},
		"min_confidence": 0.05,
	})
	var cr struct {
		Findings []Finding `json:"findings"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	foundSemantic := false
	for _, f := range cr.Findings {
		if f.Kind == "semantic" && f.Value == "Seattle" {
			foundSemantic = true
		}
	}
	if !foundSemantic {
		t.Errorf("semantic finding for Seattle missing: %+v", cr.Findings)
	}
}
