package service

import (
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/observe"
	"repro/internal/resilience"
	"repro/internal/sketch"
)

// serverObs holds the server's metric handles, created once on first
// Handler/Swap use from the configured Metrics registry.
type serverObs struct {
	reg          *observe.Registry
	http         *resilience.HTTPMetrics
	modelLoaded  *observe.Gauge   // autodetect_model_loaded
	modelBytes   *observe.Gauge   // autodetect_model_bytes
	modelLangs   *observe.Gauge   // autodetect_model_languages
	modelVersion *observe.Gauge   // autodetect_model_version
	swaps        *observe.Counter // autodetect_model_swaps_total
}

// knownRoutes is the bounded route-label set; anything else — scans,
// typos, crawlers — collapses into "other" so an attacker cannot inflate
// metric cardinality by walking the URL space.
var knownRoutes = map[string]bool{
	"/v1/health":       true,
	"/v1/livez":        true,
	"/v1/readyz":       true,
	"/v1/check-column": true,
	"/v1/check-table":  true,
	"/v1/check-pair":   true,
	"/v1/admin/reload": true,
	"/v1/jobs":         true,
	"/metrics":         true,
}

func routeLabel(r *http.Request) string {
	if knownRoutes[r.URL.Path] {
		return r.URL.Path
	}
	// Job IDs are client-visible path segments; collapse them so metric
	// cardinality stays bounded.
	if strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
		if strings.HasSuffix(r.URL.Path, "/results") {
			return "/v1/jobs/{id}/results"
		}
		return "/v1/jobs/{id}"
	}
	if strings.HasPrefix(r.URL.Path, "/debug/pprof") {
		return "/debug/pprof"
	}
	if strings.HasPrefix(r.URL.Path, "/debug/traces") {
		return "/debug/traces"
	}
	return "other"
}

// observability lazily builds the metric handles. The Metrics field is
// read once here; set it before the first Handler or Swap call.
func (s *Server) observability() *serverObs {
	s.obsOnce.Do(func() {
		reg := s.Metrics
		if reg == nil {
			reg = observe.NewRegistry()
		}
		o := &serverObs{reg: reg}
		o.http = resilience.NewHTTPMetrics(reg)
		o.http.Route = routeLabel
		o.modelLoaded = reg.Gauge("autodetect_model_loaded",
			"1 when a model is loaded and the server is ready, 0 before the first load.")
		o.modelBytes = reg.Gauge("autodetect_model_bytes",
			"Statistics footprint of the served model in bytes.")
		o.modelLangs = reg.Gauge("autodetect_model_languages",
			"Generalization languages in the served model's ensemble.")
		o.modelVersion = reg.Gauge("autodetect_model_version",
			"Registry version of the served model (0 when not registry-sourced); the "+
				"fleet-convergence signal a rollout watches per replica.")
		o.swaps = reg.Counter("autodetect_model_swaps_total",
			"Model hot-swaps since start (reloads via SIGHUP or /v1/admin/reload).")
		reg.GaugeFunc("autodetect_model_age_seconds",
			"Seconds since the served model was published (registry-sourced) or loaded.",
			func() float64 {
				m := s.snapshot()
				if m == nil {
					return 0
				}
				if m.info.PublishedUnixMs > 0 {
					return time.Since(time.UnixMilli(m.info.PublishedUnixMs)).Seconds()
				}
				return time.Since(m.loaded).Seconds()
			})

		// Detection hot-path counters live in their packages as striped
		// atomics; expose them at scrape time.
		hp := core.HotPath
		reg.CounterFunc("autodetect_detect_values_total",
			"Column cells submitted to DetectColumn.", func() uint64 { return hp().Values })
		reg.CounterFunc("autodetect_detect_pairs_total",
			"Distinct value pairs scored by the detector.", func() uint64 { return hp().Pairs })
		reg.CounterFunc("autodetect_detect_language_pairs_total",
			"Per-language pair evaluations (pairs × ensemble size).", func() uint64 { return hp().LanguagePairs })
		reg.CounterFunc("autodetect_sketch_estimate_total",
			"Count-min sketch point estimates served (sampled, unbiased).",
			func() uint64 { return sketch.HotPath().Estimates })
		reg.CounterFunc("autodetect_sketch_collision_total",
			"Sketch estimates whose hash rows disagreed, i.e. collision noise present (sampled, unbiased).",
			func() uint64 { return sketch.HotPath().Collisions })

		s.obs = o
		s.syncModelGauges()
	})
	return s.obs
}

// syncModelGauges reflects the current model snapshot into the readiness
// and model gauges.
func (s *Server) syncModelGauges() {
	if s.obs == nil {
		return
	}
	m := s.snapshot()
	if m == nil {
		s.obs.modelLoaded.Set(0)
		s.obs.modelBytes.Set(0)
		s.obs.modelLangs.Set(0)
		s.obs.modelVersion.Set(0)
		return
	}
	s.obs.modelLoaded.Set(1)
	s.obs.modelBytes.Set(float64(m.det.Bytes()))
	s.obs.modelLangs.Set(float64(len(m.det.Languages())))
	s.obs.modelVersion.Set(float64(m.info.Version))
}

// Registry returns the server's metrics registry (creating the default
// one if none was configured), for callers that want to register extra
// collectors — the daemon adds pipeline metrics here.
func (s *Server) Registry() *observe.Registry {
	return s.observability().reg
}

// obsState is embedded in Server to keep the observability fields grouped.
type obsState struct {
	obsOnce sync.Once
	obs     *serverObs
}
