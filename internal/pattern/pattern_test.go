package pattern

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCategorize(t *testing.T) {
	cases := []struct {
		r    rune
		want Category
	}{
		{'A', CatUpper}, {'Z', CatUpper}, {'a', CatLower}, {'z', CatLower},
		{'0', CatDigit}, {'9', CatDigit}, {'-', CatSymbol}, {'.', CatSymbol},
		{' ', CatSymbol}, {'$', CatSymbol}, {'/', CatSymbol}, {',', CatSymbol},
		{'É', CatUpper}, {'é', CatLower}, {'˙', CatSymbol},
	}
	for _, c := range cases {
		if got := Categorize(c.r); got != c.want {
			t.Errorf("Categorize(%q) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestAllCount(t *testing.T) {
	all := All()
	if len(all) != 144 {
		t.Fatalf("len(All()) = %d, want 144", len(all))
	}
	if CandidateCount() != 144 {
		t.Fatalf("CandidateCount() = %d, want 144", CandidateCount())
	}
	seen := make(map[Language]bool)
	for i, l := range all {
		if l.ID != i {
			t.Errorf("language %d has ID %d", i, l.ID)
		}
		if !l.Valid() {
			t.Errorf("language %v is not a valid tree cut", l)
		}
		key := l
		key.ID = 0
		if seen[key] {
			t.Errorf("duplicate language %v", l)
		}
		seen[key] = true
	}
}

func TestByID(t *testing.T) {
	for _, l := range All() {
		if got := ByID(l.ID); got != l {
			t.Fatalf("ByID(%d) = %v, want %v", l.ID, got, l)
		}
	}
	if ByID(-1).ID != -1 || ByID(144).ID != -1 {
		t.Error("out-of-range ByID should return ID -1")
	}
}

func TestGeneralizeExample2(t *testing.T) {
	// Example 2 of the paper, L1 (symbols verbatim, rest to \A).
	l1 := L1()
	if got := l1.Generalize("2011-01-01"); got != `\A[4]-\A[2]-\A[2]` {
		t.Errorf("L1(2011-01-01) = %q", got)
	}
	if got := l1.Generalize("2011.01.02"); got != `\A[4].\A[2].\A[2]` {
		t.Errorf("L1(2011.01.02) = %q", got)
	}
	// Under L1, "2014-01" and "July-01" are indistinguishable.
	if a, b := l1.Generalize("2014-01"), l1.Generalize("July-01"); a != b {
		t.Errorf("L1 should not distinguish %q vs %q", a, b)
	}

	// L2 (letters to \L, digits to \D, symbols to \S).
	l2 := L2()
	if got := l2.Generalize("2011-01-01"); got != `\D[4]\S\D[2]\S\D[2]` {
		t.Errorf("L2(2011-01-01) = %q", got)
	}
	// Under L2, the two date separators are indistinguishable...
	if a, b := l2.Generalize("2011-01-01"), l2.Generalize("2011.01.02"); a != b {
		t.Errorf("L2 should not distinguish %q vs %q", a, b)
	}
	// ...but "2014-01" vs "July-01" are distinguished.
	if got := l2.Generalize("2014-01"); got != `\D[4]\S\D[2]` {
		t.Errorf("L2(2014-01) = %q", got)
	}
	if got := l2.Generalize("July-01"); got != `\L[4]\S\D[2]` {
		t.Errorf("L2(July-01) = %q", got)
	}
}

func TestGeneralizeLeafAndRoot(t *testing.T) {
	if got := Leaf().Generalize("Ab-3"); got != "Ab-3" {
		t.Errorf("Leaf() should be identity, got %q", got)
	}
	if got := Root().Generalize("Ab-3"); got != `\A[4]` {
		t.Errorf("Root(Ab-3) = %q", got)
	}
	if got := Root().Generalize(""); got != "" {
		t.Errorf("empty value should map to empty pattern, got %q", got)
	}
}

func TestGeneralizeCrude(t *testing.T) {
	g := Crude()
	if got := g.Generalize("Jan 5, 2011"); got != `\U\l[2] \D, \D[4]` {
		t.Errorf("Crude(Jan 5, 2011) = %q", got)
	}
	if got := g.Generalize("1,000"); got != `\D,\D[3]` {
		t.Errorf("Crude(1,000) = %q", got)
	}
}

func TestGeneralizeRunLengths(t *testing.T) {
	l2 := L2()
	cases := []struct{ in, want string }{
		{"1", `\D`},
		{"12", `\D[2]`},
		{"1a2", `\D\L\D`},
		{"  ", `\S[2]`},
		{"a1-", `\L\D\S`},
	}
	for _, c := range cases {
		if got := l2.Generalize(c.in); got != c.want {
			t.Errorf("L2(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestGeneralizeIdempotentOnClassValues(t *testing.T) {
	// Same-format values must map to the same pattern: that is the whole
	// point of generalization (combats sparsity).
	l2 := L2()
	if l2.Generalize("1918-01-01") != l2.Generalize("2018-12-31") {
		t.Error("same-format dates should share a pattern under L2")
	}
}

func TestDefaultTree(t *testing.T) {
	root := DefaultTree()
	if root.Label != `\A` {
		t.Fatalf("root label = %q", root.Label)
	}
	if root.Depth() != 4 {
		t.Errorf("tree depth = %d, want 4", root.Depth())
	}
	leaves := root.Leaves()
	// 26 upper + 26 lower + 10 digits + printable symbols incl. space.
	if len(leaves) < 85 || len(leaves) > 100 {
		t.Errorf("unexpected leaf count %d", len(leaves))
	}
	seen := map[string]bool{}
	for _, l := range leaves {
		if seen[l] {
			t.Errorf("duplicate leaf %q", l)
		}
		seen[l] = true
	}
	for _, want := range []string{"A", "z", "0", "9", "-", " "} {
		if !seen[want] {
			t.Errorf("leaf %q missing from tree", want)
		}
	}
}

func TestGeneralityRankOrdering(t *testing.T) {
	if Leaf().GeneralityRank() != 0 {
		t.Error("leaf language should have rank 0")
	}
	if r := Root().GeneralityRank(); r != 12 {
		t.Errorf("root language rank = %d, want 12", r)
	}
	if Crude().GeneralityRank() >= Root().GeneralityRank() {
		t.Error("crude should be less general than root")
	}
}

// Property: generalization preserves total character count (each input rune
// is accounted for by exactly one leaf char or one unit of a class run).
func TestGeneralizePreservesLength(t *testing.T) {
	f := func(s string, id uint8) bool {
		// A literal backslash kept at the leaf level is ambiguous with the
		// class-token rendering; the decoder below is test-only, so strip it.
		s = strings.ReplaceAll(s, `\`, "/")
		l := All()[int(id)%144]
		got := l.Generalize(s)
		return patternRuneCount(got) == len([]rune(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// patternRuneCount decodes a rendered pattern and counts the number of input
// runes it represents.
func patternRuneCount(p string) int {
	n := 0
	rs := []rune(p)
	for i := 0; i < len(rs); {
		if rs[i] == '\\' && i+1 < len(rs) && strings.ContainsRune("UlLDSA", rs[i+1]) {
			i += 2
			run := 1
			if i < len(rs) && rs[i] == '[' {
				j := i + 1
				run = 0
				for j < len(rs) && rs[j] != ']' {
					run = run*10 + int(rs[j]-'0')
					j++
				}
				i = j + 1
			}
			n += run
			continue
		}
		n++
		i++
	}
	return n
}

// Property: values with identical category sequences generalize identically
// under every language whose categories are all non-leaf.
func TestGeneralizeClassOnlyDependsOnCategories(t *testing.T) {
	l := L2()
	f := func(s string) bool {
		mapped := make([]rune, 0, len(s))
		for _, r := range s {
			switch Categorize(r) {
			case CatUpper:
				mapped = append(mapped, 'Q')
			case CatLower:
				mapped = append(mapped, 'q')
			case CatDigit:
				mapped = append(mapped, '7')
			default:
				mapped = append(mapped, '#')
			}
		}
		return l.Generalize(s) == l.Generalize(string(mapped))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringRenderings(t *testing.T) {
	toks := map[Token]string{
		TokenLeaf: "·", TokenUpper: `\U`, TokenLower: `\l`, TokenLetter: `\L`,
		TokenDigit: `\D`, TokenSymbol: `\S`, TokenAny: `\A`, Token(99): "?",
	}
	for tok, want := range toks {
		if got := tok.String(); got != want {
			t.Errorf("Token(%d).String() = %q, want %q", tok, got, want)
		}
	}
	l2 := L2()
	if got := l2.String(); got != `U=\L l=\L d=\D s=\S` {
		t.Errorf("L2.String() = %q", got)
	}
}

func BenchmarkGeneralize(b *testing.B) {
	l := L2()
	v := "ITF $50.000 WTA International 2011-01-02"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.Generalize(v)
	}
}
