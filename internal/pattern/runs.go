package pattern

import (
	"strconv"
	"strings"
)

// Run is a maximal sequence of consecutive characters of one base category
// within a value.
type Run struct {
	// Cat is the base category of every character in the run.
	Cat Category
	// Text is the literal text of the run.
	Text string
	// N is the number of runes in the run.
	N int
}

// Runs is the category-run encoding of a value. Encoding a value once and
// generalizing the runs under many languages (FromRuns) avoids re-scanning
// the string per language, which matters when building statistics for all
// 144 candidate languages.
type Runs []Run

// Encode splits v into category runs.
func Encode(v string) Runs {
	var out Runs
	start := 0
	n := 0
	var cur Category = numCategories // sentinel
	for i, r := range v {
		c := Categorize(r)
		if c != cur {
			if n > 0 {
				out = append(out, Run{Cat: cur, Text: v[start:i], N: n})
			}
			cur = c
			start = i
			n = 0
		}
		n++
	}
	if n > 0 {
		out = append(out, Run{Cat: cur, Text: v[start:], N: n})
	}
	return out
}

// FromRuns generalizes a category-run encoded value under the language,
// producing exactly the same pattern as Generalize on the original string.
func (l Language) FromRuns(rs Runs) string {
	var b strings.Builder
	prev := Token(255)
	run := 0
	flush := func() {
		if run == 0 {
			return
		}
		b.WriteString(prev.String())
		if run > 1 {
			b.WriteByte('[')
			b.WriteString(strconv.Itoa(run))
			b.WriteByte(']')
		}
		run = 0
	}
	for _, r := range rs {
		t := l.token(r.Cat)
		if t == TokenLeaf {
			flush()
			prev = Token(255)
			b.WriteString(r.Text)
			continue
		}
		if t == prev {
			run += r.N
			continue
		}
		flush()
		prev = t
		run = r.N
	}
	flush()
	return b.String()
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 returns the FNV-1a hash of s, the same function HashRuns streams.
func Hash64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// HashRuns returns Hash64(l.FromRuns(rs)) without materializing the pattern
// string. This is the allocation-free hot path used when building corpus
// statistics for all 144 candidate languages.
func (l Language) HashRuns(rs Runs) uint64 {
	h := uint64(fnvOffset64)
	prev := Token(255)
	run := 0
	flush := func() {
		if run == 0 {
			return
		}
		h = fnvString(h, prev.String())
		if run > 1 {
			h = fnvByte(h, '[')
			// Decimal digits of run, most significant first.
			var digits [20]byte
			n := 0
			for v := run; v > 0; v /= 10 {
				digits[n] = byte('0' + v%10)
				n++
			}
			for i := n - 1; i >= 0; i-- {
				h = fnvByte(h, digits[i])
			}
			h = fnvByte(h, ']')
		}
		run = 0
	}
	for _, r := range rs {
		t := l.token(r.Cat)
		if t == TokenLeaf {
			flush()
			prev = Token(255)
			h = fnvString(h, r.Text)
			continue
		}
		if t == prev {
			run += r.N
			continue
		}
		flush()
		prev = t
		run = r.N
	}
	flush()
	return h
}
