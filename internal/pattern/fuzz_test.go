package pattern

import "testing"

// FuzzGeneralize checks the core generalization invariants on arbitrary
// input: no panics, FromRuns/HashRuns agree with Generalize, and the
// pattern is empty iff the value is.
func FuzzGeneralize(f *testing.F) {
	for _, seed := range []string{
		"", "2011-01-01", "ITF $50.000 WTA", "1,000", "(425) 555-0143",
		"日本語 mixed ASCII 123", "\x00\xff weird bytes", "    ", `\D[4]`,
	} {
		f.Add(seed, uint8(0))
	}
	langs := All()
	f.Fuzz(func(t *testing.T, s string, id uint8) {
		l := langs[int(id)%len(langs)]
		p := l.Generalize(s)
		rs := Encode(s)
		if got := l.FromRuns(rs); got != p {
			t.Fatalf("FromRuns %q != Generalize %q for %q", got, p, s)
		}
		if l.HashRuns(rs) != Hash64(p) {
			t.Fatalf("HashRuns mismatch for %q", s)
		}
		if (p == "") != (s == "") {
			t.Fatalf("emptiness mismatch: %q → %q", s, p)
		}
	})
}
