package pattern

import (
	"testing"
	"testing/quick"
)

func TestEncodeBasic(t *testing.T) {
	rs := Encode("Ab-12")
	want := Runs{
		{Cat: CatUpper, Text: "A", N: 1},
		{Cat: CatLower, Text: "b", N: 1},
		{Cat: CatSymbol, Text: "-", N: 1},
		{Cat: CatDigit, Text: "12", N: 2},
	}
	if len(rs) != len(want) {
		t.Fatalf("Encode(Ab-12) = %v", rs)
	}
	for i := range rs {
		if rs[i] != want[i] {
			t.Errorf("run %d = %+v, want %+v", i, rs[i], want[i])
		}
	}
	if Encode("") != nil {
		t.Error("Encode(\"\") should be nil")
	}
}

func TestEncodeMultibyte(t *testing.T) {
	rs := Encode("Café12")
	// C-a-f-é are Upper,Lower (a,f,é all lower): runs = [U:1, l:3, D:2].
	if len(rs) != 3 || rs[1].N != 3 || rs[1].Text != "afé" || rs[2].Text != "12" {
		t.Errorf("Encode(Café12) = %+v", rs)
	}
}

// Property: FromRuns(Encode(v)) is identical to Generalize(v) for every
// candidate language. This licenses the encode-once optimization used by
// the statistics builder.
func TestFromRunsMatchesGeneralize(t *testing.T) {
	langs := All()
	f := func(s string, id uint16) bool {
		l := langs[int(id)%len(langs)]
		return l.FromRuns(Encode(s)) == l.Generalize(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// And on a few crafted values across all languages.
	for _, v := range []string{"", "2011-01-01", "ITF $50.000 WTA", "1,000", "(425) 555-0143", "  x  ", "ABCdef123!!!"} {
		rs := Encode(v)
		for _, l := range langs {
			if got, want := l.FromRuns(rs), l.Generalize(v); got != want {
				t.Fatalf("lang %v value %q: FromRuns %q != Generalize %q", l, v, got, want)
			}
		}
	}
}

// Property: HashRuns streams exactly the FNV-1a hash of the rendered
// pattern, for every candidate language.
func TestHashRunsMatchesFromRuns(t *testing.T) {
	langs := All()
	f := func(s string, id uint16) bool {
		l := langs[int(id)%len(langs)]
		rs := Encode(s)
		return l.HashRuns(rs) == Hash64(l.FromRuns(rs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	for _, v := range []string{"", "2011-01-01", "x", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa1"} {
		rs := Encode(v)
		for _, l := range langs {
			if l.HashRuns(rs) != Hash64(l.FromRuns(rs)) {
				t.Fatalf("hash mismatch for %q under %v", v, l)
			}
		}
	}
}

func BenchmarkHashRuns(b *testing.B) {
	rs := Encode("ITF $50.000 WTA International 2011-01-02")
	l := L2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.HashRuns(rs)
	}
}

func BenchmarkFromRuns(b *testing.B) {
	rs := Encode("ITF $50.000 WTA International 2011-01-02")
	l := L2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.FromRuns(rs)
	}
}
