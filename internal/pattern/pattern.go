// Package pattern implements the generalization machinery of Auto-Detect
// (Huang & He, SIGMOD 2018): the character generalization tree (Definition 1),
// the space of generalization languages induced by the tree (Definition 2),
// and the generalization of string values into run-length encoded patterns
// such as `\A[4]-\A[2]` (Equation 3 and Example 2 of the paper).
//
// A generalization language maps each character of a value to a node of the
// generalization tree. Different languages trade sensitivity for robustness:
// the leaf language keeps every character verbatim (maximally sensitive,
// maximally sparse), while the root language maps everything to `\A`
// (maximally robust, insensitive). Auto-Detect selects an ensemble of
// languages whose co-occurrence statistics jointly detect incompatible
// values.
package pattern

import (
	"strings"
	"unicode"
)

// Token identifies a node of the generalization tree that a character can be
// mapped to. TokenLeaf is special: it means "keep the character itself".
type Token uint8

// Tree nodes, ordered roughly from most specific to most general.
const (
	// TokenLeaf keeps the concrete character (a leaf of the tree).
	TokenLeaf Token = iota
	// TokenUpper generalizes to the upper-case letter class `\U`.
	TokenUpper
	// TokenLower generalizes to the lower-case letter class `\l`.
	TokenLower
	// TokenLetter generalizes to the letter class `\L` (union of `\U`, `\l`).
	TokenLetter
	// TokenDigit generalizes to the digit class `\D`.
	TokenDigit
	// TokenSymbol generalizes to the symbol/punctuation class `\S`.
	TokenSymbol
	// TokenAny generalizes to the root of the tree `\A`.
	TokenAny

	numTokens
)

// String returns the pattern-syntax rendering of the token class.
// TokenLeaf has no class rendering; callers emit the character itself.
func (t Token) String() string {
	switch t {
	case TokenLeaf:
		return "·"
	case TokenUpper:
		return `\U`
	case TokenLower:
		return `\l`
	case TokenLetter:
		return `\L`
	case TokenDigit:
		return `\D`
	case TokenSymbol:
		return `\S`
	case TokenAny:
		return `\A`
	default:
		return "?"
	}
}

// Category partitions the alphabet into the four base character categories
// at the bottom of the generalization tree. Every rune belongs to exactly
// one category.
type Category uint8

// Base character categories.
const (
	CatUpper Category = iota
	CatLower
	CatDigit
	CatSymbol

	numCategories
)

// Categorize returns the base category of r. Anything that is not a letter
// or a decimal digit (including whitespace) is a symbol, mirroring the
// paper's tree in Figure 3.
func Categorize(r rune) Category {
	switch {
	case r >= 'A' && r <= 'Z':
		return CatUpper
	case r >= 'a' && r <= 'z':
		return CatLower
	case r >= '0' && r <= '9':
		return CatDigit
	case unicode.IsUpper(r):
		return CatUpper
	case unicode.IsLower(r):
		return CatLower
	case unicode.IsDigit(r):
		return CatDigit
	default:
		return CatSymbol
	}
}

// Language is a generalization language (Definition 2): a mapping from each
// base character category to a tree node, i.e. a "cut" of the generalization
// tree. The zero value is the leaf language (no generalization).
//
// With the paper's restriction that all characters of a class generalize to
// the same level, the candidate space contains 4×4×3×3 = 144 languages
// (upper: leaf/\U/\L/\A; lower: leaf/\l/\L/\A; digit: leaf/\D/\A;
// symbol: leaf/\S/\A).
type Language struct {
	// ID is the index of the language in All(). It is stable across runs.
	ID int
	// Upper, Lower, Digit and Symbol give the tree node each base category
	// generalizes to.
	Upper, Lower, Digit, Symbol Token
}

// Valid reports whether the language is a legal cut of the generalization
// tree of Figure 3 (each category may only generalize along its own path to
// the root).
func (l Language) Valid() bool {
	okU := l.Upper == TokenLeaf || l.Upper == TokenUpper || l.Upper == TokenLetter || l.Upper == TokenAny
	okL := l.Lower == TokenLeaf || l.Lower == TokenLower || l.Lower == TokenLetter || l.Lower == TokenAny
	okD := l.Digit == TokenLeaf || l.Digit == TokenDigit || l.Digit == TokenAny
	okS := l.Symbol == TokenLeaf || l.Symbol == TokenSymbol || l.Symbol == TokenAny
	return okU && okL && okD && okS
}

// token returns the tree node the language assigns to category c.
func (l Language) token(c Category) Token {
	switch c {
	case CatUpper:
		return l.Upper
	case CatLower:
		return l.Lower
	case CatDigit:
		return l.Digit
	default:
		return l.Symbol
	}
}

// String returns a compact human-readable name, e.g. "U=\L l=\L d=\D s=·".
func (l Language) String() string {
	var b strings.Builder
	b.WriteString("U=")
	b.WriteString(l.Upper.String())
	b.WriteString(" l=")
	b.WriteString(l.Lower.String())
	b.WriteString(" d=")
	b.WriteString(l.Digit.String())
	b.WriteString(" s=")
	b.WriteString(l.Symbol.String())
	return b.String()
}

// GeneralityRank is the total height of the four category mappings in the
// tree; 0 for the leaf language, 8 for the root language. Higher ranks are
// more robust but less sensitive.
func (l Language) GeneralityRank() int {
	rank := func(t Token) int {
		switch t {
		case TokenLeaf:
			return 0
		case TokenUpper, TokenLower, TokenDigit, TokenSymbol:
			return 1
		case TokenLetter:
			return 2
		case TokenAny:
			return 3 // digits and symbols reach \A at height 2; treat uniformly
		}
		return 0
	}
	return rank(l.Upper) + rank(l.Lower) + rank(l.Digit) + rank(l.Symbol)
}

// Generalize maps value v to its pattern under the language (Equation 3),
// run-length encoding consecutive identical class tokens: four digits map
// to `\D[4]` under a digit-class language. Leaf-mapped characters are kept
// verbatim (byte-exact, including invalid UTF-8). The empty value
// generalizes to the empty pattern.
//
// Generalize is defined as FromRuns∘Encode so the three generalization
// entry points (Generalize, FromRuns, HashRuns) can never disagree.
func (l Language) Generalize(v string) string {
	return l.FromRuns(Encode(v))
}

// All returns the 144 candidate generalization languages induced by the
// generalization tree under the paper's class-level restriction. The slice
// is ordered deterministically and each language's ID equals its index.
func All() []Language {
	uppers := []Token{TokenLeaf, TokenUpper, TokenLetter, TokenAny}
	lowers := []Token{TokenLeaf, TokenLower, TokenLetter, TokenAny}
	digits := []Token{TokenLeaf, TokenDigit, TokenAny}
	symbols := []Token{TokenLeaf, TokenSymbol, TokenAny}
	langs := make([]Language, 0, len(uppers)*len(lowers)*len(digits)*len(symbols))
	for _, u := range uppers {
		for _, lo := range lowers {
			for _, d := range digits {
				for _, s := range symbols {
					langs = append(langs, Language{
						ID:     len(langs),
						Upper:  u,
						Lower:  lo,
						Digit:  d,
						Symbol: s,
					})
				}
			}
		}
	}
	return langs
}

// ByID returns the language with the given All() index.
func ByID(id int) Language {
	all := All()
	if id < 0 || id >= len(all) {
		return Language{ID: -1}
	}
	return all[id]
}

// Leaf returns the language that performs no generalization (Lleaf in the
// paper): maximally sensitive, maximally sparse.
func Leaf() Language {
	return find(Language{Upper: TokenLeaf, Lower: TokenLeaf, Digit: TokenLeaf, Symbol: TokenLeaf})
}

// Root returns the language that generalizes everything to `\A` (Lroot in
// the paper): maximally robust, insensitive.
func Root() Language {
	return find(Language{Upper: TokenAny, Lower: TokenAny, Digit: TokenAny, Symbol: TokenAny})
}

// Crude returns the crude generalization G() used by distant supervision
// (Appendix F): digits, upper- and lower-case letters generalize to their
// class, while symbols and punctuation are kept untouched.
func Crude() Language {
	return find(Language{Upper: TokenUpper, Lower: TokenLower, Digit: TokenDigit, Symbol: TokenLeaf})
}

// L1 returns the language of Example 2, Equation 4: symbols are kept
// verbatim, everything else generalizes to the root `\A`.
func L1() Language {
	return find(Language{Upper: TokenAny, Lower: TokenAny, Digit: TokenAny, Symbol: TokenLeaf})
}

// L2 returns the language of Example 2, Equation 5: letters generalize to
// `\L`, digits to `\D`, symbols to `\S`.
func L2() Language {
	return find(Language{Upper: TokenLetter, Lower: TokenLetter, Digit: TokenDigit, Symbol: TokenSymbol})
}

func find(want Language) Language {
	for _, l := range All() {
		if l.Upper == want.Upper && l.Lower == want.Lower && l.Digit == want.Digit && l.Symbol == want.Symbol {
			return l
		}
	}
	panic("pattern: language not in candidate space: " + want.String())
}
