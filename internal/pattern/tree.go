package pattern

// Node is a node of a generalization tree (Definition 1). Each leaf
// corresponds to a single character of the alphabet; each intermediate node
// represents the union of the characters of its children.
type Node struct {
	// Label is the pattern-syntax name of the node (`\A`, `\L`, ...) or the
	// character itself for leaves.
	Label string
	// Token is the Token constant for class nodes, TokenLeaf for leaves.
	Token Token
	// Children are the node's children; empty for leaves.
	Children []*Node
}

// IsLeaf reports whether the node is a leaf of the tree.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Leaves returns the leaf labels under n in depth-first order.
func (n *Node) Leaves() []string {
	if n.IsLeaf() {
		return []string{n.Label}
	}
	var out []string
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Depth returns the height of the subtree rooted at n (a leaf has depth 1).
func (n *Node) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// DefaultTree builds the generalization tree of Figure 3 over the printable
// ASCII alphabet:
//
//	\A ── \L ── \U ── 'A'..'Z'
//	  │      └─ \l ── 'a'..'z'
//	  ├── \D ── '0'..'9'
//	  └── \S ── all printable symbols and space
//
// The tree is only used for documentation, validation and tests; the hot
// path works directly on Language mappings.
func DefaultTree() *Node {
	leafRange := func(lo, hi rune) []*Node {
		var out []*Node
		for r := lo; r <= hi; r++ {
			out = append(out, &Node{Label: string(r), Token: TokenLeaf})
		}
		return out
	}
	upper := &Node{Label: `\U`, Token: TokenUpper, Children: leafRange('A', 'Z')}
	lower := &Node{Label: `\l`, Token: TokenLower, Children: leafRange('a', 'z')}
	letter := &Node{Label: `\L`, Token: TokenLetter, Children: []*Node{upper, lower}}
	digit := &Node{Label: `\D`, Token: TokenDigit, Children: leafRange('0', '9')}
	var symLeaves []*Node
	for r := rune(' '); r < 127; r++ {
		if Categorize(r) == CatSymbol {
			symLeaves = append(symLeaves, &Node{Label: string(r), Token: TokenLeaf})
		}
	}
	symbol := &Node{Label: `\S`, Token: TokenSymbol, Children: symLeaves}
	return &Node{Label: `\A`, Token: TokenAny, Children: []*Node{letter, digit, symbol}}
}

// CategoryPath returns, for a base category, the chain of tree nodes from
// the category's class node up to the root, i.e. the legal generalization
// targets for that category (excluding the leaf level).
func CategoryPath(c Category) []Token {
	switch c {
	case CatUpper:
		return []Token{TokenUpper, TokenLetter, TokenAny}
	case CatLower:
		return []Token{TokenLower, TokenLetter, TokenAny}
	case CatDigit:
		return []Token{TokenDigit, TokenAny}
	default:
		return []Token{TokenSymbol, TokenAny}
	}
}

// CandidateCount returns the number of candidate languages under the
// class-level restriction (each category picks leaf or a node on its path
// to the root): (3+1)·(3+1)·(2+1)·(2+1) = 144.
func CandidateCount() int {
	n := 1
	for c := Category(0); c < numCategories; c++ {
		n *= len(CategoryPath(c)) + 1
	}
	return n
}
