package repair

import (
	"strings"
	"testing"
)

// FuzzSuggest checks that repair never panics and that any suggestion it
// makes is non-empty, differs from the flagged value, and is reasonably
// formed.
func FuzzSuggest(f *testing.F) {
	f.Add("2011-01-02|2012-05-14|2013-11-30", "2011/06/20")
	f.Add("72 kg|81 kg|64 kg", "154 lbs")
	f.Add("1200|450|98000", "1,000")
	f.Add("", "")
	f.Add("|||", "x")
	f.Fuzz(func(t *testing.T, colSpec, flagged string) {
		column := strings.Split(colSpec, "|")
		column = append(column, flagged)
		s, ok := Suggest(column, flagged)
		if !ok {
			return
		}
		if s.Proposed == "" || s.Proposed == flagged {
			t.Fatalf("degenerate suggestion %+v", s)
		}
		if s.Rule == "" || s.Confidence < 0 || s.Confidence > 1 {
			t.Fatalf("malformed suggestion %+v", s)
		}
		if s.Original != flagged {
			t.Fatalf("original mismatch %+v", s)
		}
	})
}
