// Package repair proposes corrections for values flagged by Auto-Detect:
// once a value is known to be incompatible with its column, the dominant
// format of the column often determines what the value *should* have
// looked like. The package detects the column's dominant format and tries
// to re-render the flagged value in it — reformatting dates, normalizing
// thousands separators, reshaping phone numbers, converting units, and
// stripping stray punctuation (the transformation step that self-service
// data-preparation tools attach to detected errors; cf. the OpenRefine
// discussion in Appendix A).
//
// Suggestions are conservative: when no rule produces a value whose crude
// pattern matches the column's dominant pattern, no suggestion is made
// (placeholders like "N/A" have no automatic repair).
package repair

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/pattern"
)

// Suggestion is a proposed replacement for a flagged value.
type Suggestion struct {
	// Original is the flagged value.
	Original string
	// Proposed is the replacement, rendered in the column's dominant
	// format.
	Proposed string
	// Rule names the repair applied ("reformat-date", "strip-noise",
	// "normalize-number", "reformat-phone", "convert-unit").
	Rule string
	// Confidence is the fraction of the column already in the dominant
	// format.
	Confidence float64
}

// dateLayouts are the date formats the reformatter understands, most
// specific first.
var dateLayouts = []string{
	"2006-01-02 15:04",
	"2006-01-02T15:04",
	"2006-01-02",
	"2006/01/02",
	"2006.01.02",
	"01/02/2006",
	"02-01-2006",
	"January 2, 2006",
	"2 Jan 2006",
	"Jan 2006",
	"January 2006",
}

// parseDate tries every known layout.
func parseDate(v string) (time.Time, string, bool) {
	for _, layout := range dateLayouts {
		if t, err := time.Parse(layout, v); err == nil {
			return t, layout, true
		}
	}
	return time.Time{}, "", false
}

var (
	phoneDigits = regexp.MustCompile(`^\+?1?[ .-]?\(?(\d{3})\)?[ .-]?(\d{3})[ .-]?(\d{4})$`)
	numberRe    = regexp.MustCompile(`^-?\d{1,3}(,\d{3})*(\.\d+)?$|^-?\d+(\.\d+)?$`)
	unitRe      = regexp.MustCompile(`^(\d+(?:\.\d+)?) ?(kg|lbs|C|F)$`)
)

// phoneTemplate renders area/exchange/line digits in the shape of a sample
// phone value.
func phoneTemplate(sample string) (func(a, e, l string) string, bool) {
	switch {
	case strings.HasPrefix(sample, "("):
		return func(a, e, l string) string { return fmt.Sprintf("(%s) %s-%s", a, e, l) }, true
	case strings.HasPrefix(sample, "+"):
		return func(a, e, l string) string { return fmt.Sprintf("+1 %s %s %s", a, e, l) }, true
	case strings.Contains(sample, "."):
		return func(a, e, l string) string { return fmt.Sprintf("%s.%s.%s", a, e, l) }, true
	case strings.Contains(sample, "-"):
		return func(a, e, l string) string { return fmt.Sprintf("%s-%s-%s", a, e, l) }, true
	}
	return nil, false
}

// unitConversions maps (from, to) unit pairs to conversion functions.
var unitConversions = map[[2]string]func(float64) float64{
	{"lbs", "kg"}: func(x float64) float64 { return x * 0.45359237 },
	{"kg", "lbs"}: func(x float64) float64 { return x / 0.45359237 },
	{"F", "C"}:    func(x float64) float64 { return (x - 32) * 5 / 9 },
	{"C", "F"}:    func(x float64) float64 { return x*9/5 + 32 },
}

// columnProfile summarizes the dominant format of the clean part of a
// column.
type columnProfile struct {
	// dominantPattern is the most common crude pattern.
	dominantPattern string
	// share is the fraction of (non-flagged, non-empty) values in the
	// dominant pattern.
	share float64
	// sample is a representative value in the dominant pattern.
	sample string
}

// profileColumn computes the dominant crude pattern of the column,
// excluding the flagged value.
func profileColumn(column []string, flagged string) (columnProfile, bool) {
	g := pattern.Crude()
	counts := map[string]int{}
	samples := map[string]string{}
	total := 0
	for _, v := range column {
		if v == "" || v == flagged {
			continue
		}
		// Dominance is computed over run-length-stripped patterns: a date
		// column with 1- and 2-digit days is one format, not two.
		p := stripRunLengths(g.Generalize(v))
		counts[p]++
		total++
		if _, ok := samples[p]; !ok {
			samples[p] = v
		}
	}
	if total == 0 {
		return columnProfile{}, false
	}
	best, bestN := "", 0
	for p, n := range counts {
		if n > bestN {
			best, bestN = p, n
		}
	}
	return columnProfile{
		dominantPattern: best,
		share:           float64(bestN) / float64(total),
		sample:          samples[best],
	}, true
}

// matchesDominant reports whether v's crude pattern equals the dominant
// one, or is close enough (same pattern family differing only in digit run
// lengths, e.g. 1- vs 2-digit days).
func matchesDominant(v string, prof columnProfile) bool {
	g := pattern.Crude()
	return stripRunLengths(g.Generalize(v)) == prof.dominantPattern
}

func stripRunLengths(p string) string {
	var b strings.Builder
	for i := 0; i < len(p); i++ {
		if p[i] == '[' {
			for i < len(p) && p[i] != ']' {
				i++
			}
			continue
		}
		b.WriteByte(p[i])
	}
	return b.String()
}

// Suggest proposes a repair for a flagged value given its column. It
// returns false when no conservative repair exists.
func Suggest(column []string, flagged string) (Suggestion, bool) {
	prof, ok := profileColumn(column, flagged)
	if !ok || flagged == "" {
		return Suggestion{}, false
	}
	try := func(proposed, rule string) (Suggestion, bool) {
		if proposed == "" || proposed == flagged || !matchesDominant(proposed, prof) {
			return Suggestion{}, false
		}
		return Suggestion{
			Original:   flagged,
			Proposed:   proposed,
			Rule:       rule,
			Confidence: prof.share,
		}, true
	}

	// 1. Strip stray noise: surrounding spaces, trailing dot, doubled
	// separators.
	cleaned := strings.TrimSpace(flagged)
	cleaned = strings.TrimSuffix(cleaned, ".")
	cleaned = collapseDoubledSymbols(cleaned)
	if s, ok := try(cleaned, "strip-noise"); ok {
		return s, true
	}

	// 2. Reformat dates: parse with any known layout, render in the
	// dominant sample's layout.
	if t, _, ok := parseDate(strings.TrimSpace(flagged)); ok {
		if _, domLayout, ok2 := parseDate(prof.sample); ok2 {
			if s, ok3 := try(t.Format(domLayout), "reformat-date"); ok3 {
				return s, true
			}
		}
	}

	// 3. Normalize numbers: add or drop thousands separators to match the
	// column.
	if numberRe.MatchString(strings.TrimSpace(flagged)) {
		raw := strings.ReplaceAll(strings.TrimSpace(flagged), ",", "")
		if strings.Contains(prof.sample, ",") && !strings.Contains(flagged, ",") {
			// Add separators. The number of comma groups varies with the
			// magnitude, so this rule validates by form, not by pattern.
			if x, err := strconv.ParseFloat(raw, 64); err == nil && x == math.Trunc(x) {
				if proposed := commaSeparate(raw); proposed != flagged && numberRe.MatchString(proposed) {
					return Suggestion{
						Original: flagged, Proposed: proposed,
						Rule: "normalize-number", Confidence: prof.share,
					}, true
				}
			}
		}
		if s, ok := try(raw, "normalize-number"); ok {
			return s, true
		}
	}

	// 4. Reformat phone numbers into the dominant shape.
	if m := phoneDigits.FindStringSubmatch(strings.TrimSpace(flagged)); m != nil {
		if render, ok := phoneTemplate(prof.sample); ok {
			if s, ok2 := try(render(m[1], m[2], m[3]), "reformat-phone"); ok2 {
				return s, true
			}
		}
	}

	// 5. Convert units (lbs↔kg, F↔C) into the column's unit.
	if m := unitRe.FindStringSubmatch(flagged); m != nil {
		if dm := unitRe.FindStringSubmatch(prof.sample); dm != nil && dm[2] != m[2] {
			if conv, ok := unitConversions[[2]string{m[2], dm[2]}]; ok {
				x, err := strconv.ParseFloat(m[1], 64)
				if err == nil {
					rendered := renderLike(conv(x), dm[1]) + " " + dm[2]
					if s, ok2 := try(rendered, "convert-unit"); ok2 {
						return s, true
					}
				}
			}
		}
	}

	return Suggestion{}, false
}

// collapseDoubledSymbols turns "1,,000" into "1,000" and "a  b" into "a b".
func collapseDoubledSymbols(v string) string {
	var b strings.Builder
	var prev rune = -1
	for _, r := range v {
		if r == prev && pattern.Categorize(r) == pattern.CatSymbol {
			continue
		}
		b.WriteRune(r)
		prev = r
	}
	return b.String()
}

// commaSeparate inserts thousands separators into a plain integer string.
func commaSeparate(s string) string {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead == 0 {
		lead = 3
	}
	if lead > len(s) {
		lead = len(s)
	}
	b.WriteString(s[:lead])
	for i := lead; i < len(s); i += 3 {
		b.WriteByte(',')
		b.WriteString(s[i : i+3])
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// renderLike formats x with the same decimal precision as the sample
// number string.
func renderLike(x float64, sample string) string {
	if i := strings.IndexByte(sample, '.'); i >= 0 {
		return strconv.FormatFloat(x, 'f', len(sample)-i-1, 64)
	}
	return strconv.Itoa(int(math.Round(x)))
}
