package repair

import "testing"

func TestReformatDate(t *testing.T) {
	col := []string{"2011-01-02", "2012-05-14", "2013-11-30", "2011/06/20"}
	s, ok := Suggest(col, "2011/06/20")
	if !ok {
		t.Fatal("no suggestion")
	}
	if s.Proposed != "2011-06-20" || s.Rule != "reformat-date" {
		t.Errorf("suggestion = %+v", s)
	}
	if s.Confidence != 1 {
		t.Errorf("confidence = %v", s.Confidence)
	}
}

func TestReformatTextualDate(t *testing.T) {
	col := []string{"January 2, 2011", "May 14, 2012", "12/07/2014", "August 23, 2013"}
	s, ok := Suggest(col, "12/07/2014")
	if !ok {
		t.Fatal("no suggestion")
	}
	if s.Proposed != "December 7, 2014" {
		t.Errorf("proposed %q", s.Proposed)
	}
}

func TestStripNoise(t *testing.T) {
	cases := []struct {
		col      []string
		flagged  string
		proposed string
	}{
		{[]string{"1963", "2008", "1976", "2013."}, "2013.", "2013"},
		{[]string{"1963", "2008", "1976", " 1999"}, " 1999", "1999"},
		{[]string{"2011.01.02", "2011.02.14", "2011..03.08"}, "2011..03.08", "2011.03.08"},
		{[]string{"Quarterly Report", "Annual  Summary", "Budget Overview"}, "Annual  Summary", "Annual Summary"},
	}
	for _, c := range cases {
		s, ok := Suggest(c.col, c.flagged)
		if !ok {
			t.Errorf("no suggestion for %q", c.flagged)
			continue
		}
		if s.Proposed != c.proposed || s.Rule != "strip-noise" {
			t.Errorf("Suggest(%q) = %+v, want %q", c.flagged, s, c.proposed)
		}
	}
}

func TestNormalizeNumber(t *testing.T) {
	// Plain-integer column: drop the comma.
	col := []string{"1200", "450", "98000", "1,000"}
	s, ok := Suggest(col, "1,000")
	if !ok || s.Proposed != "1000" || s.Rule != "normalize-number" {
		t.Errorf("drop-comma: %+v ok=%v", s, ok)
	}
	// Comma column: insert separators.
	col2 := []string{"1,200", "450,000", "98,000", "1234567"}
	s2, ok := Suggest(col2, "1234567")
	if !ok || s2.Proposed != "1,234,567" {
		t.Errorf("add-comma: %+v ok=%v", s2, ok)
	}
}

func TestReformatPhone(t *testing.T) {
	col := []string{"(425) 555-0143", "(206) 555-0177", "(360) 555-0102", "509.555.0156"}
	s, ok := Suggest(col, "509.555.0156")
	if !ok {
		t.Fatal("no suggestion")
	}
	if s.Proposed != "(509) 555-0156" || s.Rule != "reformat-phone" {
		t.Errorf("suggestion = %+v", s)
	}
	// And the reverse direction.
	col2 := []string{"425-555-0143", "206-555-0177", "(360) 555-0102", "509-555-0156"}
	s2, ok := Suggest(col2, "(360) 555-0102")
	if !ok || s2.Proposed != "360-555-0102" {
		t.Errorf("reverse: %+v ok=%v", s2, ok)
	}
}

func TestConvertUnit(t *testing.T) {
	col := []string{"72 kg", "81 kg", "64 kg", "154 lbs"}
	s, ok := Suggest(col, "154 lbs")
	if !ok {
		t.Fatal("no suggestion")
	}
	if s.Rule != "convert-unit" || s.Proposed != "70 kg" {
		t.Errorf("suggestion = %+v", s)
	}
	// Fahrenheit into a Celsius column, preserving decimals.
	col2 := []string{"21.5 C", "19.0 C", "23.4 C", "74.3 F"}
	s2, ok := Suggest(col2, "74.3 F")
	if !ok || s2.Proposed != "23.5 C" {
		t.Errorf("temp: %+v ok=%v", s2, ok)
	}
}

func TestNoSuggestionForPlaceholders(t *testing.T) {
	for _, flagged := range []string{"-", "N/A", "TBD", "?"} {
		col := []string{"3-2", "1-0", "4-4", flagged}
		if s, ok := Suggest(col, flagged); ok && flagged != "-" {
			t.Errorf("placeholder %q got suggestion %+v", flagged, s)
		}
	}
}

func TestNoSuggestionDegenerate(t *testing.T) {
	if _, ok := Suggest(nil, "x"); ok {
		t.Error("empty column")
	}
	if _, ok := Suggest([]string{"x", "x"}, "x"); ok {
		t.Error("flagged value is the whole column")
	}
	if _, ok := Suggest([]string{"a", "b"}, ""); ok {
		t.Error("empty flagged value")
	}
}

func TestHelpers(t *testing.T) {
	if got := commaSeparate("1234567"); got != "1,234,567" {
		t.Errorf("commaSeparate = %q", got)
	}
	if got := commaSeparate("-42000"); got != "-42,000" {
		t.Errorf("negative = %q", got)
	}
	if got := commaSeparate("12"); got != "12" {
		t.Errorf("short = %q", got)
	}
	if got := collapseDoubledSymbols("a--b  c"); got != "a-b c" {
		t.Errorf("collapse = %q", got)
	}
	if got := collapseDoubledSymbols("aabb"); got != "aabb" {
		t.Errorf("letters must not collapse: %q", got)
	}
	if got := renderLike(70.4536, "81"); got != "70" {
		t.Errorf("renderLike int = %q", got)
	}
	if got := renderLike(23.5111, "19.0"); got != "23.5" {
		t.Errorf("renderLike dec = %q", got)
	}
}
